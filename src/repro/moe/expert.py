"""Expert layers for MoE blocks.

An expert is a position-wise FFN with the same dimensions as the dense FFN
it replaces (Figure 1b of the paper).  :class:`ExpertPool` holds the set of
experts that live inside one MoE block and executes a routed batch of tokens
through the activated experts only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..tensor import FeedForward, Module, ModuleList, Tensor
from ..tensor import primitives as P
from .gating import RoutingDecision


class Expert(Module):
    """A single expert: a dense FFN identified by ``expert_id``."""

    def __init__(self, expert_id: int, d_model: int, d_ff: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.expert_id = expert_id
        self.ffn = FeedForward(d_model, d_ff, activation=activation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.ffn(x)

    @property
    def num_params(self) -> int:
        return self.num_parameters()


class ExpertPool(Module):
    """The collection of experts inside one MoE block.

    The pool implements the *expert execution* stage: given a
    :class:`~repro.moe.gating.RoutingDecision` it dispatches each token to
    its selected experts, executes only the activated experts, and combines
    the expert outputs weighted by the (renormalised) router probabilities.
    """

    def __init__(self, num_experts: int, d_model: int, d_ff: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        self.num_experts = num_experts
        self.d_model = d_model
        self.d_ff = d_ff
        self.experts = ModuleList([
            Expert(i, d_model, d_ff, activation=activation, rng=rng) for i in range(num_experts)
        ])

    def __len__(self) -> int:
        return self.num_experts

    def __getitem__(self, expert_id: int) -> Expert:
        return self.experts[expert_id]

    def forward(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        """Execute the activated experts on their routed tokens.

        Uses grouped dispatch (:meth:`_forward_grouped`): tokens are
        bucketed per activated expert and every expert FFN runs as one
        stacked batched matmul per routing round, instead of a Python loop
        over slots × unique experts.

        Parameters
        ----------
        hidden:
            Token representations, shape ``(tokens, d_model)``.
        routing:
            Routing decision produced by the block's gate (or, for pre-gated
            blocks, by the *previous* block's pre-gate).  A negative expert
            index marks a (token, slot) pair dropped by capacity limits; it
            contributes nothing and receives no gradient.

        Returns
        -------
        Tensor of shape ``(tokens, d_model)`` — the weighted combination of
        expert outputs for each token.
        """
        tokens = hidden.shape[0]
        if routing.expert_indices.shape[0] != tokens:
            raise ValueError(
                f"routing covers {routing.expert_indices.shape[0]} tokens but hidden has {tokens}"
            )
        return self._forward_grouped(hidden, routing)

    def _forward_grouped(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        """One stacked batched-matmul round over all activated experts.

        Every (token, slot) routing pair is bucketed by expert into a
        ``(experts, bucket_capacity, d_model)`` dispatch buffer; the expert
        FFNs then run as two batched matmuls over stacked weights with the
        shared activation primitive in between, and a single scatter-add
        combines the weighted expert outputs.  The hand-written backward
        mirrors the same batched structure, so the per-expert Python loop
        disappears from both passes.  Gradients flow to ``hidden`` and the
        activated experts' weights; router weights get no gradient through
        the combine (matching the loop implementation, where the routing
        weights enter as constants).
        """
        x = hidden.data  # materialises under the lazy backend (stand-down)
        tokens, d_model = x.shape
        k = routing.top_k
        flat_experts = routing.expert_indices.reshape(-1)
        flat_weights = np.asarray(routing.expert_weights, dtype=x.dtype).reshape(-1)
        pair_tokens = np.arange(tokens * k) // k
        valid = flat_experts >= 0
        if not valid.all():
            flat_experts = flat_experts[valid]
            flat_weights = flat_weights[valid]
            pair_tokens = pair_tokens[valid]
        if flat_experts.size == 0:
            return Tensor(np.zeros_like(x))

        # Bucket (token, slot) pairs by expert: pair p lands at
        # (row[p], col[p]) of the (experts, capacity) dispatch grid.
        order = np.argsort(flat_experts, kind="stable")
        sorted_experts = flat_experts[order]
        sorted_tokens = pair_tokens[order]
        sorted_weights = flat_weights[order][:, None]
        active, counts = np.unique(sorted_experts, return_counts=True)
        capacity = int(counts.max())
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        row = np.repeat(np.arange(len(active)), counts)
        col = np.arange(sorted_experts.shape[0]) - np.repeat(starts, counts)

        wi_params = [self.experts[int(e)].ffn.wi.weight for e in active]
        wo_params = [self.experts[int(e)].ffn.wo.weight for e in active]
        stacked_wi = np.stack([p.data for p in wi_params])  # (E, d_model, d_ff)
        stacked_wo = np.stack([p.data for p in wo_params])  # (E, d_ff, d_model)
        act_prim = P.RELU if self.experts[0].ffn.activation == "relu" else P.GELU

        dispatch = np.zeros((len(active), capacity, d_model), dtype=x.dtype)
        dispatch[row, col] = x[sorted_tokens]
        pre_act = dispatch @ stacked_wi
        activated = act_prim.forward(pre_act)
        expert_out = activated @ stacked_wo  # (E, capacity, d_model)

        # With top_k == 1 every token appears in at most one routing pair,
        # so the combine scatter is a plain assignment; only k > 1 needs the
        # (much slower) unbuffered np.add.at accumulation.
        unique_pairs = k == 1
        output = np.zeros_like(x)
        if unique_pairs:
            output[sorted_tokens] = expert_out[row, col] * sorted_weights
        else:
            np.add.at(output, sorted_tokens, expert_out[row, col] * sorted_weights)

        parents = [hidden, *wi_params, *wo_params]

        def backward(grad: np.ndarray) -> None:
            grad_out = np.zeros_like(expert_out)
            grad_out[row, col] = grad[sorted_tokens] * sorted_weights
            if any(p.requires_grad for p in wo_params):
                grad_wo = activated.transpose(0, 2, 1) @ grad_out
                for i, p in enumerate(wo_params):
                    if p.requires_grad:
                        p._stash(grad_wo[i])
            grad_act = grad_out @ stacked_wo.transpose(0, 2, 1)
            (grad_pre,) = act_prim.vjp(grad_act, activated, (pre_act,), (True,), {})
            if any(p.requires_grad for p in wi_params):
                grad_wi = dispatch.transpose(0, 2, 1) @ grad_pre
                for i, p in enumerate(wi_params):
                    if p.requires_grad:
                        p._stash(grad_wi[i])
            if hidden.requires_grad:
                grad_dispatch = grad_pre @ stacked_wi.transpose(0, 2, 1)
                grad_hidden = np.zeros_like(x)
                if unique_pairs:
                    grad_hidden[sorted_tokens] = grad_dispatch[row, col]
                else:
                    np.add.at(grad_hidden, sorted_tokens, grad_dispatch[row, col])
                hidden._stash(grad_hidden)

        return Tensor._make(output, parents, backward)

    def _forward_loop(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        """Reference per-slot × per-unique-expert loop implementation.

        Kept as the behavioural oracle for the grouped dispatch (see
        ``tests/moe/test_grouped_dispatch.py``); not used on the hot path.
        """
        tokens = hidden.shape[0]
        output = Tensor(np.zeros_like(hidden.numpy()))
        k = routing.top_k
        for slot in range(k):
            slot_experts = routing.expert_indices[:, slot]
            slot_weights = routing.expert_weights[:, slot]
            for expert_id in np.unique(slot_experts):
                if expert_id < 0:
                    continue  # capacity-dropped pairs contribute nothing
                token_mask = slot_experts == expert_id
                token_idx = np.nonzero(token_mask)[0]
                expert_out = self.experts[int(expert_id)](hidden[token_idx])
                weights = Tensor(slot_weights[token_idx][:, None])
                contribution = expert_out * weights
                # Scatter-add the contribution back into the output tensor.
                scatter = np.zeros((tokens, len(token_idx)),
                                   dtype=contribution.dtype)
                scatter[token_idx, np.arange(len(token_idx))] = 1.0
                output = output + Tensor(scatter).matmul(contribution)
        return output

    def expert_param_counts(self) -> Dict[int, int]:
        """Parameter count per expert (used by the capacity model tests)."""
        return {expert.expert_id: expert.num_parameters() for expert in self.experts}

    def activated_subset(self, routing: RoutingDecision) -> List[int]:
        """Expert ids that must be resident to execute ``routing``."""
        return list(routing.activated_experts)
