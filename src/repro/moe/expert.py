"""Expert layers for MoE blocks.

An expert is a position-wise FFN with the same dimensions as the dense FFN
it replaces (Figure 1b of the paper).  :class:`ExpertPool` holds the set of
experts that live inside one MoE block and executes a routed batch of tokens
through the activated experts only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..tensor import FeedForward, Module, ModuleList, Tensor
from .gating import RoutingDecision


class Expert(Module):
    """A single expert: a dense FFN identified by ``expert_id``."""

    def __init__(self, expert_id: int, d_model: int, d_ff: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.expert_id = expert_id
        self.ffn = FeedForward(d_model, d_ff, activation=activation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.ffn(x)

    @property
    def num_params(self) -> int:
        return self.num_parameters()


class ExpertPool(Module):
    """The collection of experts inside one MoE block.

    The pool implements the *expert execution* stage: given a
    :class:`~repro.moe.gating.RoutingDecision` it dispatches each token to
    its selected experts, executes only the activated experts, and combines
    the expert outputs weighted by the (renormalised) router probabilities.
    """

    def __init__(self, num_experts: int, d_model: int, d_ff: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        self.num_experts = num_experts
        self.d_model = d_model
        self.d_ff = d_ff
        self.experts = ModuleList([
            Expert(i, d_model, d_ff, activation=activation, rng=rng) for i in range(num_experts)
        ])

    def __len__(self) -> int:
        return self.num_experts

    def __getitem__(self, expert_id: int) -> Expert:
        return self.experts[expert_id]

    def forward(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        """Execute the activated experts on their routed tokens.

        Parameters
        ----------
        hidden:
            Token representations, shape ``(tokens, d_model)``.
        routing:
            Routing decision produced by the block's gate (or, for pre-gated
            blocks, by the *previous* block's pre-gate).

        Returns
        -------
        Tensor of shape ``(tokens, d_model)`` — the weighted combination of
        expert outputs for each token.
        """
        tokens = hidden.shape[0]
        if routing.expert_indices.shape[0] != tokens:
            raise ValueError(
                f"routing covers {routing.expert_indices.shape[0]} tokens but hidden has {tokens}"
            )
        output = Tensor(np.zeros_like(hidden.numpy()))
        k = routing.top_k
        for slot in range(k):
            slot_experts = routing.expert_indices[:, slot]
            slot_weights = routing.expert_weights[:, slot]
            for expert_id in np.unique(slot_experts):
                token_mask = slot_experts == expert_id
                token_idx = np.nonzero(token_mask)[0]
                expert_out = self.experts[int(expert_id)](hidden[token_idx])
                weights = Tensor(slot_weights[token_idx][:, None])
                contribution = expert_out * weights
                # Scatter-add the contribution back into the output tensor.
                scatter = np.zeros((tokens, len(token_idx)))
                scatter[token_idx, np.arange(len(token_idx))] = 1.0
                output = output + Tensor(scatter).matmul(contribution)
        return output

    def expert_param_counts(self) -> Dict[int, int]:
        """Parameter count per expert (used by the capacity model tests)."""
        return {expert.expert_id: expert.num_parameters() for expert in self.experts}

    def activated_subset(self, routing: RoutingDecision) -> List[int]:
        """Expert ids that must be resident to execute ``routing``."""
        return list(routing.activated_experts)
