"""Arrival processes and load specifications for serving under traffic.

The paper evaluates one request at a time; production serving faces a
*stream* of requests.  This module adds the missing dimension: arrival
processes that timestamp request traces, and :class:`LoadSpec`s that bundle
a request-shape workload with an arrival process into a named load test.

Two load-generation modes are supported, mirroring standard serving
benchmarks (e.g. vLLM's benchmark_serving, mlperf-inference "server" vs
"offline" scenarios):

* **open-loop** — requests arrive according to the process regardless of
  completion (models independent users; exposes queueing collapse beyond
  the saturation rate);
* **closed-loop** — a fixed number of clients issue a request, wait for it
  to finish, and immediately issue the next (models a worker pool; arrival
  timestamps are all zero and the scheduler's concurrency cap plays the role
  of the client count).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..moe.configs import ModelConfig, get_config
from .generator import WorkloadSpec, generate_traces, get_workload
from .traces import RequestTrace


class ArrivalProcess:
    """Base class: generates inter-arrival gaps at a mean ``rate`` req/s."""

    kind = "base"

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive (requests/second)")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def inter_arrival_times(self, n: int) -> np.ndarray:
        raise NotImplementedError

    def arrival_times(self, n: int) -> List[float]:
        """Absolute arrival timestamps of the first ``n`` requests."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        return np.cumsum(self.inter_arrival_times(n)).tolist()


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals — the standard open-loop traffic model."""

    kind = "poisson"

    def inter_arrival_times(self, n: int) -> np.ndarray:
        return self._rng.exponential(1.0 / self.rate, size=n)


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals (a paced load generator)."""

    kind = "deterministic"

    def inter_arrival_times(self, n: int) -> np.ndarray:
        return np.full(n, 1.0 / self.rate)


class BurstArrivals(ArrivalProcess):
    """Bursty traffic: groups of ``burst_size`` near-simultaneous requests.

    Bursts are spaced so the long-run average rate still equals ``rate`` —
    the worst case for prefetch windows, since a burst makes concurrent
    requests contend for (and share) the same expert transfers.
    """

    kind = "burst"

    def __init__(self, rate: float, seed: int = 0, burst_size: int = 4) -> None:
        super().__init__(rate, seed=seed)
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        self.burst_size = burst_size

    def inter_arrival_times(self, n: int) -> np.ndarray:
        gaps = np.zeros(n)
        burst_gap = self.burst_size / self.rate
        for i in range(0, n, self.burst_size):
            gaps[i] = burst_gap if i > 0 else 0.0
        return gaps


_PROCESSES = {
    "poisson": PoissonArrivals,
    "deterministic": DeterministicArrivals,
    "burst": BurstArrivals,
}


def make_arrival_process(kind: str, rate: float, seed: int = 0,
                         **kwargs) -> ArrivalProcess:
    """Factory for arrival processes by kind name."""
    if kind not in _PROCESSES:
        raise ValueError(f"unknown arrival process {kind!r}; known: {sorted(_PROCESSES)}")
    return _PROCESSES[kind](rate, seed=seed, **kwargs)


@dataclass
class TimedRequest:
    """A request trace with an arrival timestamp — the scheduler's input unit."""

    request_id: int
    arrival_time: float
    trace: RequestTrace

    @property
    def input_length(self) -> int:
        return self.trace.input_length

    @property
    def output_length(self) -> int:
        return self.trace.output_length


@dataclass(frozen=True)
class LoadSpec:
    """A named load test: request shapes + an arrival process.

    ``workload`` names the per-request shape (a registered
    :class:`~repro.workloads.generator.WorkloadSpec`); ``request_rate`` is
    the offered load in requests/second for open-loop mode; ``concurrency``
    is the client count for closed-loop mode.
    """

    name: str
    workload: str = "squad_single_batch"
    mode: str = "open"              # "open" or "closed"
    arrival: str = "poisson"        # open-loop arrival process kind
    request_rate: float = 4.0       # requests/second (open-loop)
    concurrency: int = 4            # simultaneous clients (closed-loop)
    burst_size: int = 4             # only used by the "burst" process
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")

    def with_overrides(self, **kwargs) -> "LoadSpec":
        return replace(self, **kwargs)

    def arrival_process(self) -> Optional[ArrivalProcess]:
        if self.mode == "closed":
            return None
        kwargs = {"burst_size": self.burst_size} if self.arrival == "burst" else {}
        return make_arrival_process(self.arrival, self.request_rate,
                                    seed=self.seed, **kwargs)


#: Poisson open-loop QA traffic — the default load test of the serving bench.
POISSON_QA_LOAD = LoadSpec(
    name="poisson_qa",
    workload="squad_single_batch",
    mode="open",
    arrival="poisson",
    request_rate=4.0,
    description="Open-loop Poisson arrivals over the QA-style request shape.",
)

#: Bursty open-loop traffic: concurrent requests that share expert fetches.
BURSTY_QA_LOAD = LoadSpec(
    name="bursty_qa",
    workload="squad_single_batch",
    mode="open",
    arrival="burst",
    request_rate=8.0,
    burst_size=4,
    description="Bursts of simultaneous QA requests (stress for transfer dedup).",
)

#: Closed-loop saturation: a fixed worker pool keeps the replica busy.
CLOSED_LOOP_QA_LOAD = LoadSpec(
    name="closed_loop_qa",
    workload="squad_single_batch",
    mode="closed",
    concurrency=4,
    description="Closed-loop clients back-to-back, measuring saturated throughput.",
)

_LOAD_SPECS: Dict[str, LoadSpec] = {
    spec.name: spec for spec in (POISSON_QA_LOAD, BURSTY_QA_LOAD, CLOSED_LOOP_QA_LOAD)
}


def get_load_spec(name: str) -> LoadSpec:
    """Look up a named load spec."""
    try:
        return _LOAD_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown load spec {name!r}; known: {sorted(_LOAD_SPECS)}") from None


def list_load_specs() -> Dict[str, LoadSpec]:
    return dict(_LOAD_SPECS)


def timestamp_traces(traces: List[RequestTrace],
                     process: Optional[ArrivalProcess]) -> List[TimedRequest]:
    """Attach arrival timestamps to traces (zero timestamps without a process)."""
    if process is None:
        times = [0.0] * len(traces)
    else:
        times = process.arrival_times(len(traces))
    return [TimedRequest(request_id=i, arrival_time=t, trace=trace)
            for i, (t, trace) in enumerate(zip(times, traces))]


def generate_timed_requests(config: "ModelConfig | str", load: LoadSpec,
                            workload: Optional[WorkloadSpec] = None) -> List[TimedRequest]:
    """Materialise a load spec into timestamped request traces.

    ``workload`` overrides the registered request-shape spec (used by the
    benches to shrink request counts without re-registering specs).
    """
    config = get_config(config) if isinstance(config, str) else config
    spec = workload if workload is not None else get_workload(load.workload)
    traces = generate_traces(config, spec)
    return timestamp_traces(traces, load.arrival_process())
