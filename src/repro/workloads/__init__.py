"""Inference workload and expert-activation trace generators."""

from .generator import (
    SKEWED_ROUTING,
    SQUAD_SINGLE_BATCH,
    XSUM_SINGLE_BATCH,
    WorkloadSpec,
    generate_traces,
    generate_traces_by_name,
    get_workload,
    list_workloads,
)
from .traces import (
    BlockActivation,
    IterationActivations,
    RequestTrace,
    TraceGenerator,
    expected_distinct_experts,
    trace_from_routing,
)

__all__ = [
    "SKEWED_ROUTING",
    "SQUAD_SINGLE_BATCH",
    "XSUM_SINGLE_BATCH",
    "WorkloadSpec",
    "generate_traces",
    "generate_traces_by_name",
    "get_workload",
    "list_workloads",
    "BlockActivation",
    "IterationActivations",
    "RequestTrace",
    "TraceGenerator",
    "expected_distinct_experts",
    "trace_from_routing",
]
