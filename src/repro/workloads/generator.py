"""Inference workload definitions and parameter sweeps.

A *workload* is a set of requests (input/output lengths, batch size, routing
skew) plus the model configuration they run against.  The benchmark harness
uses these definitions so every figure regenerates from a named, documented
workload rather than ad-hoc constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..moe.configs import ModelConfig, get_config
from .traces import RequestTrace, TraceGenerator


@dataclass(frozen=True)
class WorkloadSpec:
    """A named inference workload.

    The paper's performance evaluation (Section VI-A) uses single-batch
    question-answering style serving: short inputs, short generated answers,
    batch size 1 — "real-world production ML serving systems are optimized
    for a batch size of 1".
    """

    name: str
    num_requests: int = 8
    input_length: int = 32
    output_length: int = 32
    batch_size: int = 1
    routing_skew: float = 0.0
    top_k: Optional[int] = None
    seed: int = 0
    description: str = ""

    def with_overrides(self, **kwargs) -> "WorkloadSpec":
        return replace(self, **kwargs)


#: Single-batch QA-style decoding workload used by Figures 10-12 and 16.
SQUAD_SINGLE_BATCH = WorkloadSpec(
    name="squad_single_batch",
    num_requests=8,
    input_length=32,
    output_length=32,
    batch_size=1,
    routing_skew=0.0,
    description="Closed-book QA style serving: short prompt, short answer, batch 1.",
)

#: Summarisation-style workload: longer inputs, used for sensitivity checks.
XSUM_SINGLE_BATCH = WorkloadSpec(
    name="xsum_single_batch",
    num_requests=4,
    input_length=128,
    output_length=48,
    batch_size=1,
    routing_skew=0.0,
    description="Summarisation style serving: long article prompt, short summary.",
)

#: Skewed-routing workload exhibiting hot experts, used by the caching study
#: (Figure 15); the skew follows the observation of Huang et al. that a few
#: experts receive most activations.
SKEWED_ROUTING = WorkloadSpec(
    name="skewed_routing",
    num_requests=8,
    input_length=32,
    output_length=32,
    batch_size=1,
    routing_skew=1.2,
    description="Hot-expert workload for the expert-caching study.",
)

#: Load-testing request mix: many short QA requests, used with the arrival
#: processes in :mod:`repro.workloads.arrivals` to drive the continuous-
#: batching scheduler at sustained offered loads.
HEAVY_TRAFFIC_QA = WorkloadSpec(
    name="heavy_traffic_qa",
    num_requests=32,
    input_length=32,
    output_length=32,
    batch_size=1,
    routing_skew=0.0,
    description="Sustained-traffic QA request mix for open/closed-loop load tests.",
)

#: Mixed-length load-testing mix: same shape as summarisation traffic, more
#: requests, for load tests where prefill cost dominates.
HEAVY_TRAFFIC_SUMMARISE = WorkloadSpec(
    name="heavy_traffic_summarise",
    num_requests=16,
    input_length=128,
    output_length=48,
    batch_size=1,
    routing_skew=0.0,
    description="Sustained-traffic summarisation mix (prefill-heavy) for load tests.",
)

_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (SQUAD_SINGLE_BATCH, XSUM_SINGLE_BATCH, SKEWED_ROUTING,
                                 HEAVY_TRAFFIC_QA, HEAVY_TRAFFIC_SUMMARISE)
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a named workload."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(_WORKLOADS)}") from None


def list_workloads() -> Dict[str, WorkloadSpec]:
    return dict(_WORKLOADS)


def generate_traces(config: ModelConfig, spec: WorkloadSpec) -> List[RequestTrace]:
    """Materialise the request traces of ``spec`` against ``config``."""
    generator = TraceGenerator(config, skew=spec.routing_skew, top_k=spec.top_k, seed=spec.seed)
    return generator.workload(spec.num_requests, spec.input_length, spec.output_length,
                              batch_size=spec.batch_size, top_k=spec.top_k)


def generate_traces_by_name(config_name: str, workload_name: str) -> List[RequestTrace]:
    """Convenience wrapper used by the benchmarks: both arguments by name."""
    return generate_traces(get_config(config_name), get_workload(workload_name))
