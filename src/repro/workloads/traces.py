"""Expert-activation traces for the serving simulator.

The serving engines need to know, for every MoE block evaluation, *which*
experts are activated.  At paper scale we cannot run the real Switch
checkpoints, so traces come from one of two sources:

* :class:`TraceGenerator` — synthetic routing that mirrors the statistical
  behaviour of a trained top-k router: each token independently picks
  ``top_k`` experts from a (optionally skewed) categorical distribution.
  The skew knob reproduces the "hot expert" phenomenon the caching study of
  Figure 15 relies on.
* :func:`trace_from_routing` — converts the routing trace recorded by the
  functional numpy models (tiny configurations) into the same format, so the
  functional and performance layers agree on the interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..moe.configs import ModelConfig

#: Activated experts of one MoE block evaluation: a sorted list of expert ids.
BlockActivation = List[int]

#: Activations of every MoE block in one forward pass (encoder pass or one
#: decoder iteration), indexed by MoE-block position.
IterationActivations = List[BlockActivation]


@dataclass
class RequestTrace:
    """Expert activations of one inference request.

    Attributes
    ----------
    input_length:
        Number of input (encoder) tokens.
    output_length:
        Number of generated tokens, i.e. decoder iterations.
    encoder_activations:
        Per-encoder-MoE-block activated experts for the single encoder pass.
    decode_activations:
        One :data:`IterationActivations` per decoder iteration.
    """

    input_length: int
    output_length: int
    encoder_activations: IterationActivations = field(default_factory=list)
    decode_activations: List[IterationActivations] = field(default_factory=list)

    @property
    def num_decoder_moe_blocks(self) -> int:
        return len(self.decode_activations[0]) if self.decode_activations else 0

    def total_decode_expert_activations(self) -> int:
        return sum(len(block) for it in self.decode_activations for block in it)


class TraceGenerator:
    """Synthetic expert-activation trace generator.

    Parameters
    ----------
    config:
        Model configuration (defines the number of MoE blocks and experts).
    skew:
        Zipf-like skew of the expert popularity distribution.  ``0`` gives
        uniform routing (the load-balanced ideal); larger values concentrate
        activations on a few hot experts, which is what makes expert caching
        effective (Figure 15).
    top_k:
        Experts activated per token; defaults to the config's ``top_k``.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(self, config: ModelConfig, skew: float = 0.0,
                 top_k: Optional[int] = None, seed: int = 0) -> None:
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.config = config
        self.skew = skew
        self.top_k = top_k if top_k is not None else config.top_k
        if not 1 <= self.top_k <= config.num_experts:
            raise ValueError(
                f"top_k must be in [1, {config.num_experts}], got {self.top_k}")
        self._rng = np.random.default_rng(seed)
        self._probabilities = self._expert_distribution()
        #: log-probabilities for the Gumbel top-k sampler (cached per shape:
        #: the distribution is a constant of the generator).
        self._log_probabilities = np.log(self._probabilities)
        #: Normalised CDF for the top-1 sampler.  ``Generator.choice(p=...)``
        #: rebuilds this cumsum on every call; caching it and drawing via
        #: ``random`` + ``searchsorted`` consumes the identical RNG stream
        #: (that is exactly ``choice``'s internal algorithm), so traces are
        #: bit-identical to the uncached path while generation is ~10x
        #: faster at decode (one block draw per call).
        self._cdf = self._probabilities.cumsum()
        self._cdf /= self._cdf[-1]

    def _expert_distribution(self) -> np.ndarray:
        num_experts = self.config.num_experts
        if self.skew == 0.0:
            return np.full(num_experts, 1.0 / num_experts)
        ranks = np.arange(1, num_experts + 1, dtype=np.float64)
        weights = ranks ** (-self.skew)
        return weights / weights.sum()

    # ------------------------------------------------------------------
    def block_activation(self, num_tokens: int, top_k: Optional[int] = None) -> BlockActivation:
        """Distinct experts activated when ``num_tokens`` tokens are routed.

        Vectorised over the tokens (the per-token Python loop dominated
        trace generation for large workloads): top-1 routing is a single
        categorical draw per block; top-k draws per-token Gumbel keys and
        takes each row's k largest — the Gumbel-top-k trick, which samples
        exactly the same without-replacement (Plackett–Luce) distribution
        as sequential renormalised draws.
        """
        k = top_k if top_k is not None else self.top_k
        if k < 1:
            raise ValueError(f"top_k must be >= 1, got {k}")
        num_experts = self.config.num_experts
        k = min(k, num_experts)
        if k == 1:
            draws = self._cdf.searchsorted(self._rng.random(num_tokens),
                                           side="right")
            if num_tokens == 1:
                return [int(draws[0])]
            return sorted({int(e) for e in draws})
        keys = self._rng.gumbel(size=(num_tokens, num_experts)) + self._log_probabilities
        top = np.argpartition(-keys, k - 1, axis=1)[:, :k]
        return sorted({int(e) for e in top.ravel()})

    def iteration_activations(self, num_tokens: int, num_moe_blocks: int,
                              top_k: Optional[int] = None) -> IterationActivations:
        """Activations of every MoE block of one forward pass."""
        return [self.block_activation(num_tokens, top_k=top_k) for _ in range(num_moe_blocks)]

    def request_trace(self, input_length: int, output_length: int,
                      batch_size: int = 1, top_k: Optional[int] = None) -> RequestTrace:
        """A full request: one encoder pass plus ``output_length`` decoder iterations."""
        if input_length < 1 or output_length < 1:
            raise ValueError("input_length and output_length must be >= 1")
        encoder_blocks = self.config.num_moe_blocks("encoder")
        decoder_blocks = self.config.num_moe_blocks("decoder")
        encoder = self.iteration_activations(input_length * batch_size, encoder_blocks, top_k=top_k)
        decode = [self.iteration_activations(batch_size, decoder_blocks, top_k=top_k)
                  for _ in range(output_length)]
        return RequestTrace(input_length=input_length, output_length=output_length,
                            encoder_activations=encoder, decode_activations=decode)

    def workload(self, num_requests: int, input_length: int, output_length: int,
                 batch_size: int = 1, top_k: Optional[int] = None) -> List[RequestTrace]:
        """A list of request traces forming one workload."""
        return [self.request_trace(input_length, output_length, batch_size=batch_size, top_k=top_k)
                for _ in range(num_requests)]


def expected_distinct_experts(num_tokens: int, num_experts: int, top_k: int = 1) -> float:
    """Expected number of distinct experts activated by uniform top-k routing.

    Used by the analytic peak-memory and capacity planners; matches the
    empirical mean of :meth:`TraceGenerator.block_activation` under zero
    skew.
    """
    if num_experts <= 0:
        raise ValueError("num_experts must be positive")
    draws = num_tokens * min(top_k, num_experts)
    return num_experts * (1.0 - (1.0 - 1.0 / num_experts) ** draws)


def trace_from_routing(stack_traces: Sequence[Sequence], input_length: int) -> RequestTrace:
    """Build a :class:`RequestTrace` from the functional model's recorded routing.

    ``stack_traces`` is the list returned by ``greedy_decode(collect_trace=True)``:
    the first entry holds the encoder pass (if the encoder has MoE blocks) and
    subsequent entries hold one decoder iteration each.
    """
    if not stack_traces:
        raise ValueError("empty routing trace")
    encoder_entries = [e for e in stack_traces[0] if e.stack == "encoder"]
    if encoder_entries:
        encoder = [sorted(e.activated_experts) for e in encoder_entries]
        decode_iters = stack_traces[1:]
    else:
        encoder = []
        decode_iters = stack_traces
    decode = []
    for iteration in decode_iters:
        decoder_entries = [e for e in iteration if e.stack == "decoder"]
        decode.append([sorted(e.activated_experts) for e in decoder_entries])
    return RequestTrace(input_length=input_length, output_length=len(decode),
                        encoder_activations=encoder, decode_activations=decode)
