"""Sampled time-series probes: gauges, counters and log-bucket histograms.

End-of-run aggregates (:class:`~repro.serving.metrics.LoadTestResult`) say
*what* a load test did; they cannot say *when*.  The paper's claims — and
the ROADMAP's autoscaler, which needs queue-depth and utilisation signals
to act on — are temporal, so this module provides the time-series side of
the observability layer:

* :class:`GaugeSeries` — one sampled signal as parallel ``(time, value)``
  arrays, with a declared merge ``mode`` (``sum`` for extensive quantities
  like queue depth pooled across replicas, ``mean`` for intensive ones like
  utilisation, ``max`` for high-water marks);
* :class:`Counter` — a monotone event count;
* :class:`LogBucketHistogram` — a log-bucketed distribution (exact count,
  sum, min/max; power-of-``base`` buckets), cheap enough to observe every
  scheduling round;
* :class:`MetricsRegistry` — the named collection of all three, carried on
  ``LoadTestResult.probes`` and merged across replicas like the existing
  cache/tier stats (:func:`merge_metrics`).

Cadence semantics
-----------------
The serving scheduler samples through :class:`ServingProbes` at **round
boundaries**: after a round (or replayed window) completes, a sample is
taken iff at least ``interval`` simulated seconds have passed since the
previous sample.  Sample times are therefore *at least* ``interval`` apart
but not on a fixed grid — a long round (or a fast-forwarded replay window)
simply lands one sample at its end.  A forced final sample at the end of
``serve`` pins the last value of every gauge to the end-of-run aggregate
(the consistency contract the tests hold to 1e-9).

Because replicas do not share a sample grid, gauges merge by **step
alignment**: the merged series is sampled at the union of the input sample
times, each input held at its last sampled value (0.0 before its first
sample), combined under the series' merge mode.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Dict, List, Optional, Sequence

GAUGE_MODES = ("sum", "mean", "max")


class GaugeSeries:
    """One sampled time series: parallel time/value lists plus a merge mode."""

    __slots__ = ("name", "mode", "times", "values")

    def __init__(self, name: str, mode: str = "sum") -> None:
        if mode not in GAUGE_MODES:
            raise ValueError(f"unknown gauge mode {mode!r}; known: {GAUGE_MODES}")
        self.name = name
        self.mode = mode
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def sample(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (non-decreasing times)."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"gauge {self.name!r} sampled at t={t} after t={self.times[-1]}")
        self.times.append(t)
        self.values.append(value)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    @property
    def max_value(self) -> Optional[float]:
        return max(self.values) if self.values else None

    @property
    def mean_value(self) -> Optional[float]:
        return sum(self.values) / len(self.values) if self.values else None

    @staticmethod
    def merged(series: Sequence["GaugeSeries"]) -> "GaugeSeries":
        """Step-aligned merge of same-named series from concurrent replicas.

        The output is sampled at the union of the inputs' sample times;
        each input contributes its last value at or before the sample time
        (0.0 before its first sample), combined under the shared mode.
        """
        if not series:
            raise ValueError("no series to merge")
        first = series[0]
        for s in series[1:]:
            if s.name != first.name or s.mode != first.mode:
                raise ValueError(
                    f"cannot merge gauge {s.name!r} ({s.mode}) into "
                    f"{first.name!r} ({first.mode})")
        out = GaugeSeries(first.name, first.mode)
        times = sorted({t for s in series for t in s.times})
        cursors = [0] * len(series)
        held = [0.0] * len(series)
        for t in times:
            for i, s in enumerate(series):
                while cursors[i] < len(s.times) and s.times[cursors[i]] <= t:
                    held[i] = s.values[cursors[i]]
                    cursors[i] += 1
            if first.mode == "sum":
                value = sum(held)
            elif first.mode == "max":
                value = max(held)
            else:
                value = sum(held) / len(held)
            out.sample(t, value)
        return out


class Counter:
    """A monotone event counter (merged by summing)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n


class LogBucketHistogram:
    """Distribution summary with power-of-``base`` buckets.

    Bucket ``k`` covers ``(base**(k-1), base**k]``; zero observations are
    counted separately.  Count, sum, min and max are tracked exactly, so
    the mean is exact and only the shape is quantised.  Merged by summing
    bucket counts.
    """

    __slots__ = ("name", "base", "buckets", "zeros", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError("histogram base must be > 1")
        self.name = name
        self.base = base
        self.buckets: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} observed negative {value}")
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value == 0:
            self.zeros += 1
            return
        bucket = math.ceil(math.log(value, self.base) - 1e-12)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def upper_bound(self, bucket: int) -> float:
        return self.base ** bucket

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, object]:
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "min": self.min_value, "max": self.max_value,
                "zeros": self.zeros,
                "buckets": {self.upper_bound(k): n
                            for k, n in sorted(self.buckets.items())}}


class MetricsRegistry:
    """Named gauges, counters and histograms of one serving run."""

    def __init__(self) -> None:
        self.gauges: Dict[str, GaugeSeries] = {}
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, LogBucketHistogram] = {}

    def gauge(self, name: str, mode: str = "sum") -> GaugeSeries:
        series = self.gauges.get(name)
        if series is None:
            series = self.gauges[name] = GaugeSeries(name, mode)
        elif series.mode != mode:
            raise ValueError(
                f"gauge {name!r} registered with mode {series.mode!r}, "
                f"requested {mode!r}")
        return series

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, base: float = 2.0) -> LogBucketHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogBucketHistogram(name, base=base)
        return hist

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, object]]:
        """Scalar roll-up of every instrument (for reports and asserts)."""
        out: Dict[str, Dict[str, object]] = {}
        for name, g in sorted(self.gauges.items()):
            out[name] = {"kind": "gauge", "mode": g.mode, "samples": len(g),
                         "last": g.last, "max": g.max_value,
                         "mean": g.mean_value}
        for name, c in sorted(self.counters.items()):
            out[name] = {"kind": "counter", "value": c.value}
        for name, h in sorted(self.histograms.items()):
            out[name] = {"kind": "histogram", **h.summary()}
        return out

    def to_records(self) -> List[Dict[str, object]]:
        """Flat export rows (JSONL / CSV): kind, name, t, value.

        Gauges emit one row per sample (``t`` = sample time); counters one
        row (``t`` empty); histograms one row per bucket (``t`` = bucket
        upper bound, ``value`` = count) plus a ``histogram_count`` /
        ``histogram_sum`` pair.
        """
        rows: List[Dict[str, object]] = []
        for name, g in sorted(self.gauges.items()):
            rows.extend({"kind": "gauge", "name": name, "t": t, "value": v}
                        for t, v in zip(g.times, g.values))
        for name, c in sorted(self.counters.items()):
            rows.append({"kind": "counter", "name": name, "t": None,
                         "value": c.value})
        for name, h in sorted(self.histograms.items()):
            rows.append({"kind": "histogram_count", "name": name, "t": None,
                         "value": h.count})
            rows.append({"kind": "histogram_sum", "name": name, "t": None,
                         "value": h.total})
            if h.zeros:
                rows.append({"kind": "histogram_bucket", "name": name,
                             "t": 0.0, "value": h.zeros})
            rows.extend({"kind": "histogram_bucket", "name": name,
                         "t": h.upper_bound(k), "value": n}
                        for k, n in sorted(h.buckets.items()))
        return rows

    def merged_with(self, other: "MetricsRegistry") -> "MetricsRegistry":
        merged = merge_metrics([self, other])
        assert merged is not None
        return merged


def merge_metrics(registries: Sequence[Optional[MetricsRegistry]]
                  ) -> Optional[MetricsRegistry]:
    """Pool per-replica registries; ``None`` only when no replica had one.

    Gauges merge by step alignment under their declared mode (see the
    module docstring); counters and histogram buckets sum.  Instruments
    present on only some replicas merge over the replicas that have them.
    """
    present = [r for r in registries if r is not None]
    if not present:
        return None
    merged = MetricsRegistry()
    gauge_names = sorted({n for r in present for n in r.gauges})
    for name in gauge_names:
        series = [r.gauges[name] for r in present if name in r.gauges]
        merged.gauges[name] = GaugeSeries.merged(series)
    counter_names = sorted({n for r in present for n in r.counters})
    for name in counter_names:
        merged.counter(name).add(sum(r.counters[name].value for r in present
                                     if name in r.counters))
    hist_names = sorted({n for r in present for n in r.histograms})
    for name in hist_names:
        parts = [r.histograms[name] for r in present if name in r.histograms]
        out = merged.histogram(name, base=parts[0].base)
        for h in parts:
            if h.base != out.base:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bases {out.base} vs {h.base}")
            out.count += h.count
            out.total += h.total
            out.zeros += h.zeros
            for k, n in h.buckets.items():
                out.buckets[k] = out.buckets.get(k, 0) + n
            if h.min_value is not None and (out.min_value is None
                                            or h.min_value < out.min_value):
                out.min_value = h.min_value
            if h.max_value is not None and (out.max_value is None
                                            or h.max_value > out.max_value):
                out.max_value = h.max_value
    return merged


class ServingProbes:
    """Round-boundary sampler owned by one scheduler's ``serve`` call.

    Holds the cadence state (``interval``, time of the next eligible
    sample) and the registry the samples land in; the scheduler supplies
    the signal values because only it can read them cheaply.  All per-round
    work is a single float comparison when no sample is due.
    """

    __slots__ = ("interval", "registry", "_next_sample", "last_sample")

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"probe interval must be > 0, got {interval}")
        self.interval = interval
        self.registry = MetricsRegistry()
        self._next_sample = 0.0
        self.last_sample: Optional[float] = None

    def due(self, now: float) -> bool:
        return now >= self._next_sample

    def mark_sampled(self, now: float) -> None:
        self._next_sample = now + self.interval
        self.last_sample = now

    def observe_round(self, num_ops: int) -> None:
        """Account one executed (non-replayed) scheduling round."""
        self.registry.counter("rounds").add(1)
        self.registry.histogram("round_ops").observe(float(num_ops))


def write_metrics(registry: MetricsRegistry, path: str,
                  extra: Optional[Dict[str, object]] = None) -> None:
    """Write a registry's records to ``path`` as JSONL or CSV.

    The format follows the extension: ``.csv`` writes a header plus one
    row per record; anything else writes JSON-lines.  ``extra`` adds
    constant key/value columns to every row (sweep-cell identification).
    """
    rows = registry.to_records()
    if extra:
        rows = [{**extra, **row} for row in rows]
    if path.endswith(".csv"):
        fields = list(extra or ()) + ["kind", "name", "t", "value"]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            writer.writerows(rows)
    else:
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")


def append_metrics_rows(rows: List[Dict[str, object]],
                        registry: MetricsRegistry,
                        extra: Dict[str, object]) -> None:
    """Collect one sweep cell's records, tagged with its axis values."""
    rows.extend({**extra, **row} for row in registry.to_records())


def write_metrics_rows(rows: List[Dict[str, object]], path: str) -> None:
    """Write pre-collected (possibly multi-cell) metric rows to disk."""
    if path.endswith(".csv"):
        fields: List[str] = []
        for row in rows:
            for key in row:
                if key not in fields:
                    fields.append(key)
        if not fields:
            fields = ["kind", "name", "t", "value"]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            writer.writerows(rows)
    else:
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
