"""Per-request span trees assembled from the scheduler's round commits.

A span tree is the request-centric view of a serving run: one root span
from arrival to last generated token, with children for the queue wait,
the prefill pass, each decode iteration, and — nested under the pass that
issued them — every expert fetch the pass put on the copy/stage lanes,
attributed with its source tier and DRAM-stage hit/miss outcome.

The trees are assembled *cheaply in no-trace mode*: the scheduler already
knows each pass's first/last op indices and the committed start/end arrays
of every round (:meth:`ArrayTimeline.commit_batch` returns them), so span
construction reads a handful of floats per pass out of data that exists
anyway — no op objects, no name strings, no trace retention.  The cost is
that span recording works only with the array timeline engine (the scalar
path never materialises per-round columns) and stands down round replay
(a fast-forwarded window has no per-round spans to record) — both enforced
by the scheduler's knob validation.

Spans are plain data: :class:`Span` rows in a flat list with parent
indices (index 0 is the root), collected per request into
:class:`RequestSpans` and surfaced on ``LoadTestResult.spans``.  The
Perfetto exporter (:mod:`repro.obs.trace_export`) renders them as one
track per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Span categories, from coarse to fine.
CAT_REQUEST = "request"
CAT_QUEUE = "queue"
CAT_PREFILL = "prefill"
CAT_DECODE = "decode"
CAT_FETCH = "expert_fetch"
CAT_STAGE = "stage_in"


@dataclass
class Span:
    """One node of a request's span tree (times in simulated seconds)."""

    name: str
    category: str
    start: float
    end: float
    #: Index of the parent span in the owning tree's flat list (-1 = root).
    parent: int = -1
    #: Sparse attributes (fetch tier/hit, device, bytes, iteration …).
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PassFetch:
    """One transfer op a pass issued (the raw material of fetch spans)."""

    kind: str                      # CAT_FETCH or CAT_STAGE
    start: float
    end: float
    device: int
    num_bytes: float
    source_tier: Optional[str]     # "dram" / "ssd" (None if unattributed)
    stage_hit: bool


@dataclass
class RequestSpans:
    """Span tree of one served request (flat list, parent indices)."""

    request_id: int
    arrival_time: float
    spans: List[Span] = field(default_factory=list)

    @property
    def root(self) -> Span:
        return self.spans[0]

    def children(self, index: int) -> List[int]:
        return [i for i, span in enumerate(self.spans) if span.parent == index]

    def by_category(self, category: str) -> List[Span]:
        return [span for span in self.spans if span.category == category]


class _RequestBuilder:
    """Per-request accumulation while the request is in flight."""

    __slots__ = ("request_id", "arrival_time", "passes")

    def __init__(self, request_id: int, arrival_time: float) -> None:
        self.request_id = request_id
        self.arrival_time = arrival_time
        # (kind, iteration, start, end, fetches)
        self.passes: List[tuple] = []


class SpanLog:
    """Collects span trees for every request of one ``serve`` call.

    Driven by the scheduler: :meth:`admit` when a request joins the active
    set, :meth:`record_pass` after each round's commit (with the pass
    bounds and its issued fetches), :meth:`finalise` when the request
    completes — which assembles and returns the finished tree.
    """

    def __init__(self) -> None:
        self._open: Dict[int, _RequestBuilder] = {}

    def admit(self, request_id: int, arrival_time: float) -> None:
        self._open[request_id] = _RequestBuilder(request_id, arrival_time)

    def record_pass(self, request_id: int, kind: str, iteration: int,
                    start: float, end: float,
                    fetches: List[PassFetch]) -> None:
        self._open[request_id].passes.append(
            (kind, iteration, start, end, fetches))

    def finalise(self, request_id: int, completion_time: float) -> RequestSpans:
        builder = self._open.pop(request_id)
        tree = RequestSpans(request_id=request_id,
                            arrival_time=builder.arrival_time)
        spans = tree.spans
        end = completion_time
        if builder.passes:
            end = max(end, builder.passes[-1][3])
        spans.append(Span(name=f"r{request_id}", category=CAT_REQUEST,
                          start=builder.arrival_time, end=end))
        if builder.passes:
            first_start = builder.passes[0][2]
            spans.append(Span(name="queue", category=CAT_QUEUE,
                              start=builder.arrival_time,
                              end=max(builder.arrival_time, first_start),
                              parent=0))
        for kind, iteration, start, pass_end, fetches in builder.passes:
            name = "prefill" if kind == CAT_PREFILL else f"decode[{iteration}]"
            pass_index = len(spans)
            spans.append(Span(name=name, category=kind, start=start,
                              end=pass_end, parent=0,
                              attrs={"iteration": iteration}))
            for fetch in fetches:
                attrs: Dict[str, object] = {"device": fetch.device,
                                            "bytes": fetch.num_bytes}
                if fetch.source_tier is not None:
                    attrs["source_tier"] = fetch.source_tier
                    attrs["stage_hit"] = fetch.stage_hit
                spans.append(Span(name=fetch.kind, category=fetch.kind,
                                  start=fetch.start, end=fetch.end,
                                  parent=pass_index, attrs=attrs))
        return tree
