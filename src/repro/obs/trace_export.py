"""Chrome trace-event (Perfetto) JSON export of timelines and span trees.

The export replaces :meth:`ExecutionTimeline.render_ascii` as the way to
*see* pre-gating overlap: load the emitted file in https://ui.perfetto.dev
(or chrome://tracing) and each device renders as a process with one track
per hardware stream — compute kernels overlapping expert fetches on the
copy lane is exactly Figure 9, zoomable and queryable.

Layout of the emitted events (the trace-event JSON array format, all
timestamps in microseconds):

* every op becomes a ``ph:"X"`` complete event with ``pid`` = device and
  ``tid`` = stream lane (compute/copy/stage/interconnect), ``cat`` = the
  op's category and the op id/payload bytes in ``args``;
* ``ph:"M"`` metadata events name the processes (``device0`` …) and
  threads (lane names), and set sort order so lanes render compute-first;
* per-request **flow events** (``ph:"s"``/``"t"``/``"f"``, one flow id per
  request) thread a request's journey through its ops across lanes and
  devices — Perfetto draws them as arrows.  Flows are anchored at the
  request's first op and every ``lm_head`` (token-completion) op, parsed
  from the ``r<id>.`` op-name prefix the scheduler writes in trace mode;
* request span trees (:mod:`repro.obs.spans`) render as one additional
  process (``pid`` = :data:`SPAN_PID`) with one track per request, each
  span a nested ``X`` event carrying its attributes.

The timeline side needs a trace-recording run (``record_trace=True``);
span export works from any span-logged run, trace or no-trace.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence

from .spans import RequestSpans

#: tid of each stream lane inside a device's process (and render order).
STREAM_TIDS: Dict[str, int] = {"compute": 0, "copy": 1, "stage": 2,
                               "interconnect": 3}

#: Process id the request-span tracks render under (devices use their own
#: small ids; anything clear of plausible device counts works).
SPAN_PID = 1000

_REQUEST_PREFIX = re.compile(r"^r(\d+)\.")
_SECONDS_TO_US = 1e6


def _metadata(pid: int, process: str, threads: Dict[int, str],
              sort_index: int) -> List[dict]:
    events = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": process}},
        {"ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
         "args": {"sort_index": sort_index}},
    ]
    for tid, name in sorted(threads.items()):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    return events


def timeline_trace_events(timeline) -> List[dict]:
    """Trace events for a trace-recording timeline's full op dump.

    ``timeline`` is any object exposing ``to_records()`` in the shape of
    :meth:`ExecutionTimeline.to_records` (raises in no-trace mode — the
    trace is the export's substrate).
    """
    records = sorted(timeline.to_records(),
                     key=lambda r: (r["device"], r["stream"], r["start"],
                                    r["op_id"]))
    events: List[dict] = []
    devices = sorted({r["device"] for r in records})
    streams_by_device: Dict[int, set] = {}
    for rec in records:
        streams_by_device.setdefault(rec["device"], set()).add(rec["stream"])
    for device in devices:
        threads = {STREAM_TIDS[s]: s
                   for s in streams_by_device[device] if s in STREAM_TIDS}
        events.extend(_metadata(device, f"device{device}", threads,
                                sort_index=device))
    by_request: Dict[int, List[dict]] = {}
    for rec in records:
        name = rec["name"] or rec["category"]
        events.append({
            "ph": "X", "name": name, "cat": rec["category"],
            "pid": rec["device"], "tid": STREAM_TIDS.get(rec["stream"], 0),
            "ts": rec["start"] * _SECONDS_TO_US,
            "dur": rec["duration"] * _SECONDS_TO_US,
            "args": {"op_id": rec["op_id"],
                     "bytes": rec.get("num_bytes", 0.0)},
        })
        match = _REQUEST_PREFIX.match(rec["name"] or "")
        if match:
            by_request.setdefault(int(match.group(1)), []).append(rec)
    events.extend(_request_flow_events(by_request))
    return events


def _request_flow_events(by_request: Dict[int, List[dict]]) -> List[dict]:
    """Flow arrows threading each request through its per-token milestones.

    Anchors are the request's first op and each ``lm_head`` op (one per
    generated token) — enough to follow the request across lanes without
    drawing an arrow per op.
    """
    events: List[dict] = []
    for request_id, recs in sorted(by_request.items()):
        recs = sorted(recs, key=lambda r: (r["start"], r["op_id"]))
        anchors = [recs[0]]
        anchors.extend(r for r in recs[1:] if r["name"].endswith(".lm_head"))
        if len(anchors) < 2:
            continue
        for i, rec in enumerate(anchors):
            ph = "s" if i == 0 else ("f" if i == len(anchors) - 1 else "t")
            event = {"ph": ph, "name": f"r{request_id}", "cat": "request",
                     "id": request_id, "pid": rec["device"],
                     "tid": STREAM_TIDS.get(rec["stream"], 0),
                     "ts": rec["start"] * _SECONDS_TO_US}
            if ph == "f":
                event["bp"] = "e"
            events.append(event)
    return events


def span_trace_events(spans: Sequence[RequestSpans],
                      pid: int = SPAN_PID) -> List[dict]:
    """Trace events rendering request span trees, one track per request."""
    events: List[dict] = []
    threads = {tree.request_id: f"r{tree.request_id}" for tree in spans}
    events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                   "args": {"name": "requests"}})
    events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                   "tid": 0, "args": {"sort_index": pid}})
    for tid, name in sorted(threads.items()):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    for tree in spans:
        for index, span in enumerate(tree.spans):
            events.append({
                "ph": "X", "name": span.name, "cat": span.category,
                "pid": pid, "tid": tree.request_id,
                "ts": span.start * _SECONDS_TO_US,
                "dur": span.duration * _SECONDS_TO_US,
                "args": {**span.attrs, "parent": span.parent,
                         "index": index},
            })
    return events


def build_chrome_trace(timeline=None,
                       spans: Optional[Sequence[RequestSpans]] = None,
                       metadata: Optional[Dict[str, object]] = None) -> dict:
    """Assemble the trace-event JSON payload (the Perfetto file content)."""
    if timeline is None and spans is None:
        raise ValueError("nothing to export: pass a timeline and/or spans")
    events: List[dict] = []
    if timeline is not None:
        events.extend(timeline_trace_events(timeline))
    if spans:
        events.extend(span_trace_events(spans))
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = dict(metadata)
    return payload


def write_chrome_trace(path: str, timeline=None,
                       spans: Optional[Sequence[RequestSpans]] = None,
                       metadata: Optional[Dict[str, object]] = None) -> dict:
    """Write the trace-event JSON to ``path``; returns the payload."""
    payload = build_chrome_trace(timeline=timeline, spans=spans,
                                 metadata=metadata)
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return payload
