"""Observability layer: request spans, sampled probes, Perfetto export.

Three complementary views of a serving run, all cheap enough to leave on
in production-sized simulations:

* :mod:`~repro.obs.spans` — per-request span trees (queue → prefill →
  decode iterations → expert fetches with tier/hit attribution),
  assembled from data the scheduler's round commits already produce;
* :mod:`~repro.obs.probes` — sampled time-series gauges plus counters and
  log-bucket histograms, surfaced on ``LoadTestResult.probes`` and merged
  across replicas;
* :mod:`~repro.obs.trace_export` — Chrome trace-event / Perfetto JSON
  rendering of trace-mode timelines (lanes as tracks, requests as flows)
  and span trees.
"""

from .probes import (
    Counter,
    GaugeSeries,
    LogBucketHistogram,
    MetricsRegistry,
    ServingProbes,
    merge_metrics,
    write_metrics,
)
from .spans import PassFetch, RequestSpans, Span, SpanLog
from .trace_export import (
    build_chrome_trace,
    span_trace_events,
    timeline_trace_events,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "GaugeSeries",
    "LogBucketHistogram",
    "MetricsRegistry",
    "ServingProbes",
    "merge_metrics",
    "write_metrics",
    "PassFetch",
    "RequestSpans",
    "Span",
    "SpanLog",
    "build_chrome_trace",
    "span_trace_events",
    "timeline_trace_events",
    "write_chrome_trace",
]
