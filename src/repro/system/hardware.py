"""Hardware specifications for the performance model.

The paper's testbed is a single NVIDIA A100 (80 GB HBM) attached to an AMD
EPYC 7V12 host with 1.8 TB of DDR4, connected over PCIe gen4 at 32 GB/s
(Section V).  The SSD-offloading study of Figure 16 adds an NVMe SSD tier.

These dataclasses capture the capacities, bandwidths and fixed overheads the
discrete-event timeline uses to turn "bytes moved" and "FLOPs executed" into
time.  They are *parameters*, not measurements: every figure-level benchmark
states which system spec it used so results can be re-derived under a
different machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

GB = 1e9
TB = 1e12
US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class GpuSpec:
    """A single GPU accelerator."""

    name: str
    memory_bytes: int
    hbm_bandwidth: float          # bytes / second
    fp16_tflops: float            # peak tensor-core throughput, TFLOP/s
    #: Effective per-kernel overhead at batch-1 decoding, including the host
    #: side of the serving framework (kernel launch, tensor bookkeeping).
    #: Calibrated so the absolute GPU-only throughput of Switch-Base lands in
    #: the ~100-150 tokens/s range the paper measures with FasterTransformer.
    kernel_launch_overhead: float = 30 * US
    #: Host-side overhead of the MoE dispatch path (routing softmax/argmax,
    #: scatter/gather of tokens to experts, per-expert GEMM launches).  This
    #: dominates small-batch MoE block latency on real systems and is the
    #: reason a single MoE block costs hundreds of microseconds rather than
    #: the tens of microseconds a pure roofline model would predict.
    moe_dispatch_overhead: float = 550 * US

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError(f"{self.name!r}: memory_bytes must be positive")
        if self.hbm_bandwidth <= 0:
            raise ValueError(f"{self.name!r}: hbm_bandwidth must be positive")
        if self.fp16_tflops <= 0:
            raise ValueError(f"{self.name!r}: fp16_tflops must be positive")
        if self.kernel_launch_overhead < 0 or self.moe_dispatch_overhead < 0:
            raise ValueError(f"{self.name!r}: overheads must be non-negative")

    @property
    def flops_per_second(self) -> float:
        return self.fp16_tflops * 1e12


@dataclass(frozen=True)
class HostSpec:
    """CPU host memory (the offload target for expert parameters)."""

    name: str
    dram_bytes: int
    dram_bandwidth: float = 200 * GB


@dataclass(frozen=True)
class LinkSpec:
    """An interconnect between two memory tiers (PCIe, or SSD read path)."""

    name: str
    bandwidth: float              # bytes / second
    latency: float = 10 * US      # fixed per-transfer latency (seconds)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name!r}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name!r}: latency must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


@dataclass(frozen=True)
class SsdSpec:
    """NVMe SSD used as the coldest offload tier (Figure 16)."""

    name: str
    capacity_bytes: int
    read_bandwidth: float
    read_latency: float = 100 * US

    def as_link(self) -> LinkSpec:
        return LinkSpec(name=f"{self.name}-read", bandwidth=self.read_bandwidth,
                        latency=self.read_latency)


#: Intra-node GPU↔GPU interconnects for expert-parallel replicas.  NVLink 3
#: (A100 generation) moves ~300 GB/s per direction between peers; PCIe P2P is
#: the fallback when GPUs only share the host's PCIe fabric.
NVLINK3 = LinkSpec(name="NVLink3", bandwidth=300 * GB, latency=2 * US)
PCIE_P2P = LinkSpec(name="PCIe gen4 P2P", bandwidth=25 * GB, latency=10 * US)


@dataclass(frozen=True)
class DeviceTopology:
    """The GPU complement of one replica: N devices plus their interconnect.

    A single-GPU replica is the degenerate topology (one device, interconnect
    unused); expert-parallel replicas shard the expert pool across
    ``devices`` and route tokens over ``interconnect`` (all-to-all dispatch/
    combine around every MoE block).
    """

    devices: Tuple[GpuSpec, ...]
    interconnect: LinkSpec = NVLINK3

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a DeviceTopology needs at least one device")

    @classmethod
    def single(cls, gpu: GpuSpec) -> "DeviceTopology":
        """The degenerate one-GPU topology every single-GPU system implies."""
        return cls(devices=(gpu,))

    @classmethod
    def homogeneous(cls, gpu: GpuSpec, num_devices: int,
                    interconnect: LinkSpec = NVLINK3) -> "DeviceTopology":
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        return cls(devices=(gpu,) * num_devices, interconnect=interconnect)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def total_memory_bytes(self) -> int:
        return sum(device.memory_bytes for device in self.devices)

    def device(self, index: int) -> GpuSpec:
        return self.devices[index]

    def all_to_all_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` of token traffic over the interconnect."""
        if self.num_devices == 1 or num_bytes == 0:
            return 0.0
        return self.interconnect.transfer_time(num_bytes)


@dataclass(frozen=True)
class SystemSpec:
    """A complete serving machine: GPU(s) + host + interconnects.

    ``offload_tier`` selects where the expert parameters live when offloaded:
    ``"dram"`` (the paper's main configuration) or ``"ssd"`` (Figure 16).
    ``topology`` describes the replica's GPU complement for expert-parallel
    serving; ``None`` means the degenerate single-GPU topology built from
    ``gpu``, which keeps every legacy single-GPU timing bit-identical.
    """

    name: str
    gpu: GpuSpec
    host: HostSpec
    pcie: LinkSpec
    ssd: SsdSpec
    offload_tier: str = "dram"
    #: Host<->device synchronisation cost paid whenever a routing decision
    #: computed on the GPU must be read by the host to issue an expert
    #: transfer (all CPU-GPU designs) or when a prefetch is enqueued on the
    #: copy stream.
    host_sync_overhead: float = 50 * US
    #: Multi-GPU device topology; ``None`` is the one-GPU machine.
    topology: Optional[DeviceTopology] = field(default=None)

    def __post_init__(self) -> None:
        if self.offload_tier not in ("dram", "ssd"):
            raise ValueError(f"offload_tier must be 'dram' or 'ssd', got {self.offload_tier!r}")

    @property
    def device_topology(self) -> DeviceTopology:
        """The replica's topology (degenerate single-GPU when unset)."""
        if self.topology is not None:
            return self.topology
        return DeviceTopology.single(self.gpu)

    @property
    def num_gpus(self) -> int:
        return self.device_topology.num_devices

    def with_num_gpus(self, num_gpus: int,
                      interconnect: Optional[LinkSpec] = None) -> "SystemSpec":
        """This machine scaled to ``num_gpus`` identical devices.

        ``num_gpus=1`` with no explicit interconnect clears the topology so
        the result is exactly the legacy single-GPU spec.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if num_gpus == 1 and interconnect is None:
            return replace(self, topology=None)
        topology = DeviceTopology.homogeneous(
            self.gpu, num_gpus, interconnect=interconnect or NVLINK3)
        return replace(self, topology=topology)

    @property
    def offload_link(self) -> LinkSpec:
        """The link over which offloaded expert parameters reach the GPU.

        The legacy two-point collapse of :meth:`tier_path` (min bandwidth,
        summed latency); kept because single-link callers and older tests
        speak it.  Numerically identical to the tier path's pipelined model.
        """
        if self.offload_tier == "dram":
            return self.pcie
        # SSD reads are bottlenecked by the slower of the SSD read path and
        # PCIe; for the configurations studied the SSD is always slower.
        ssd_link = self.ssd.as_link()
        bandwidth = min(ssd_link.bandwidth, self.pcie.bandwidth)
        latency = ssd_link.latency + self.pcie.latency
        return LinkSpec(name="ssd-to-gpu", bandwidth=bandwidth, latency=latency)

    def tier_path(self, source_tier: Optional[str] = None):
        """The multi-hop :class:`~repro.system.tiers.TierPath` from a tier to HBM.

        ``source_tier`` defaults to this system's ``offload_tier``.  The
        DRAM path is the single PCIe hop; the SSD path is the SSD read into
        host DRAM followed by the PCIe copy (chunk-pipelined, so its total
        transfer time matches :attr:`offload_link` exactly).
        """
        from .tiers import TierPath, TransferHop  # avoid import cycle

        tier = self.offload_tier if source_tier is None else source_tier
        pcie_hop = TransferHop(source="dram", dest="hbm", link=self.pcie)
        if tier == "dram":
            return TierPath(source="dram", hops=(pcie_hop,))
        if tier == "ssd":
            ssd_hop = TransferHop(source="ssd", dest="dram", link=self.ssd.as_link())
            return TierPath(source="ssd", hops=(ssd_hop, pcie_hop))
        raise ValueError(
            f"no transfer path from tier {tier!r}; sources: ['dram', 'ssd']")

    def expert_transfer_time(self, expert_bytes: int) -> float:
        """Seconds to migrate one expert's parameters to GPU memory.

        The full multi-hop pipelined time from the offload tier (identical
        to the legacy single-link model — the tier-path parity contract).
        """
        return self.tier_path().transfer_time(expert_bytes)

    def with_offload_tier(self, tier: str) -> "SystemSpec":
        return replace(self, offload_tier=tier)


# ----------------------------------------------------------------------
# Reference machines
# ----------------------------------------------------------------------
A100_80GB = GpuSpec(
    name="NVIDIA A100 80GB",
    memory_bytes=int(80 * GB),
    hbm_bandwidth=2.0 * TB,
    fp16_tflops=312.0,
)

A100_40GB = GpuSpec(
    name="NVIDIA A100 40GB",
    memory_bytes=int(40 * GB),
    hbm_bandwidth=1.6 * TB,
    fp16_tflops=312.0,
)

EPYC_7V12 = HostSpec(
    name="AMD EPYC 7V12 (1.8TB DDR4)",
    dram_bytes=int(1.8 * TB),
)

PCIE_GEN4 = LinkSpec(name="PCIe gen4 x16", bandwidth=32 * GB, latency=10 * US)

NVME_SSD = SsdSpec(
    name="NVMe SSD",
    capacity_bytes=int(4 * TB),
    read_bandwidth=3 * GB,
    read_latency=100 * US,
)

#: The paper's evaluation machine (Section V).
PAPER_SYSTEM = SystemSpec(
    name="A100-80GB + EPYC DRAM over PCIe gen4",
    gpu=A100_80GB,
    host=EPYC_7V12,
    pcie=PCIE_GEN4,
    ssd=NVME_SSD,
    offload_tier="dram",
)

#: Figure 16's SSD-offloading variant of the same machine.
SSD_SYSTEM = PAPER_SYSTEM.with_offload_tier("ssd")


def get_system(name: str = "paper") -> SystemSpec:
    """Look up a reference system spec by short name.

    Raises :class:`ValueError` naming the available systems for a bad name.
    """
    systems: Dict[str, SystemSpec] = {
        "paper": PAPER_SYSTEM,
        "ssd": SSD_SYSTEM,
    }
    if name not in systems:
        raise ValueError(
            f"unknown system {name!r}; available systems: {sorted(systems)}")
    return systems[name]
