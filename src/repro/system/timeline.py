"""Multi-stream discrete-event execution timeline.

Models the hardware queues that matter for MoE offloading performance:

* the **compute stream** — GPU kernels execute in issue order;
* the **copy stream** — DRAM→GPU (or SSD→GPU) expert transfers execute in
  issue order, concurrently with the compute stream;
* the **stage stream** — SSD→DRAM staging reads, used when a host-DRAM
  staging cache fronts SSD-resident experts: the SSD read of one expert
  proceeds concurrently with *both* GPU compute and another expert's PCIe
  copy, which is exactly the decoupling a staging buffer buys.

An operation may declare dependencies on other operations (by id); it starts
at the later of (a) the time its stream becomes free and (b) the completion
of all its dependencies.  This is exactly the overlap semantics of CUDA
streams with events, and is what produces Figure 9's execution timelines:
MoE-OnDemand's transfers depend on the same block's gate (serialised),
whereas Pre-gated MoE's transfers depend only on the *previous* block's
pre-gate and therefore overlap with expert execution.

Performance model of the timeline itself
----------------------------------------
Every aggregate a load test asks about — :attr:`~ExecutionTimeline.makespan`,
per-lane busy time, device utilisation, exposed copy time, per-category op
counts/durations/bytes — is maintained *incrementally* inside :meth:`add`,
so querying them is O(1) regardless of how many ops were ever scheduled.
(The original implementation recomputed them by scanning the full op list;
called once per decoder iteration that made serving loads accidentally
quadratic in request count.)

For long serving runs the trace itself is the memory bottleneck: a
100k-request load schedules hundreds of millions of ops.  Constructing the
timeline with ``record_trace=False`` keeps only the *live* ops — those a
future op may still name as a dependency — and lets the owner retire ops it
knows can no longer be referenced (:meth:`retire_completed`).  Aggregates
are unaffected (they never consult the trace); trace-only queries
(:attr:`ops`, :meth:`render_ascii`, :meth:`to_records`, the ``scan_*``
reference implementations) raise in this mode.  The continuous-batching
scheduler serves with ``record_trace=False`` by default and retires each
round's ops as the round completes, keeping resident op count O(active
window) instead of O(total ops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class Stream(Enum):
    """Hardware queue an operation executes on."""

    COMPUTE = "compute"
    COPY = "copy"
    #: Second copy queue: SSD→DRAM staging reads (the coldest hop of a
    #: multi-hop expert fetch), overlapping both compute and PCIe copies.
    STAGE = "stage"
    #: Intra-node GPU↔GPU interconnect (NVLink / PCIe-P2P): all-to-all
    #: token dispatch/combine traffic of expert-parallel replicas.
    INTERCONNECT = "interconnect"


#: Dense integer codes for streams, used by the columnar batch interface.
STREAMS: Tuple[Stream, ...] = (Stream.COMPUTE, Stream.COPY, Stream.STAGE,
                               Stream.INTERCONNECT)
STREAM_CODE: Dict[Stream, int] = {stream: code for code, stream in enumerate(STREAMS)}
_COMPUTE_CODE = STREAM_CODE[Stream.COMPUTE]

# Interned op-category names.  Categories are a tiny closed set ("non_moe",
# "expert_transfer", …); the columnar batch stores the integer code so the
# hot path never hashes strings.
_CATEGORY_CODES: Dict[str, int] = {}
_CATEGORY_NAMES: List[str] = []


def category_code(category: str) -> int:
    """Intern ``category`` and return its dense integer code."""
    code = _CATEGORY_CODES.get(category)
    if code is None:
        code = len(_CATEGORY_NAMES)
        _CATEGORY_CODES[category] = code
        _CATEGORY_NAMES.append(category)
    return code


def category_name(code: int) -> str:
    return _CATEGORY_NAMES[code]


class OpBatch:
    """Column-oriented builder for a batch of timeline operations.

    Obtained from :meth:`ExecutionTimeline.begin_batch`; op ids are assigned
    eagerly (``base_id + index``) so dependencies *within* the batch — the
    common case for a scheduling round — can be declared before the batch is
    committed.  Dependencies are stored flat (CSR-style ``dep_ids`` +
    ``dep_offsets``), avoiding one list object per op.  ``names`` is kept
    only when the owning timeline records a trace; no-trace serving never
    builds op-name strings at all.
    """

    __slots__ = ("base_id", "record_names", "stream", "device", "duration",
                 "earliest", "category", "num_bytes", "names", "dep_ids",
                 "dep_offsets")

    def __init__(self, base_id: int, record_names: bool) -> None:
        self.base_id = base_id
        self.record_names = record_names
        self.stream: List[int] = []
        self.device: List[int] = []
        self.duration: List[float] = []
        self.earliest: List[float] = []
        self.category: List[int] = []
        self.num_bytes: List[float] = []
        self.names: Optional[List[str]] = [] if record_names else None
        self.dep_ids: List[int] = []
        self.dep_offsets: List[int] = [0]

    def __len__(self) -> int:
        return len(self.duration)

    def add(self, stream_code: int, duration: float,
            deps: Sequence[int] = (), category: int = 0, device: int = 0,
            earliest_start: float = 0.0, num_bytes: float = 0.0,
            name: Optional[str] = None) -> int:
        """Append one op to the batch; returns its (global) op id."""
        self.stream.append(stream_code)
        self.device.append(device)
        self.duration.append(duration)
        self.earliest.append(earliest_start)
        self.category.append(category)
        self.num_bytes.append(num_bytes)
        if deps:
            self.dep_ids.extend(deps)
        self.dep_offsets.append(len(self.dep_ids))
        if self.names is not None:
            self.names.append(name if name is not None else "")
        return self.base_id + len(self.duration) - 1

    def op_label(self, index: int) -> str:
        """Human-readable identity of op ``index`` for error messages."""
        if self.names is not None and self.names[index]:
            name = repr(self.names[index])
        else:
            name = f"#{self.base_id + index}"
        stream = STREAMS[self.stream[index]]
        return (f"op {name} ({category_name(self.category[index])}) on lane "
                f"({stream.value}, device {self.device[index]})")


@dataclass
class TimelineOp:
    """One scheduled operation (a kernel or a transfer)."""

    op_id: int
    name: str
    stream: Stream
    duration: float
    depends_on: List[int] = field(default_factory=list)
    category: str = "generic"
    start: float = 0.0
    end: float = 0.0
    #: Wall-clock time before which the op may not start regardless of
    #: stream/dependency readiness (e.g. the arrival time of the request it
    #: belongs to, for open-loop load simulations).
    earliest_start: float = 0.0
    #: GPU the op's queue belongs to.  Each (stream, device) pair is its own
    #: FIFO lane, so device 1's compute proceeds concurrently with device 0's
    #: (expert parallelism); single-GPU timelines leave every op on device 0.
    #: Interconnect ops are replica-wide and always use device 0.
    device: int = 0
    #: Payload bytes the op moves (transfers) — feeds the per-category byte
    #: aggregates; 0 for kernels.
    num_bytes: float = 0.0

    @property
    def scheduled(self) -> bool:
        return self.end > 0.0 or self.duration == 0.0


class ExecutionTimeline:
    """Schedules operations on per-device compute/copy/stage lanes.

    Operations are scheduled eagerly as they are added (each (stream, device)
    lane is FIFO and dependencies must already exist), so querying times is
    O(1) and the object doubles as an execution trace.  A single-GPU replica
    uses only device 0's lanes, which reproduces the original two-stream
    timeline exactly.

    Parameters
    ----------
    record_trace:
        ``True`` (default) keeps every op for rendering / record export (the
        Figure 9 trace mode).  ``False`` keeps only ops that may still be
        referenced as dependencies; the owner retires finished ops via
        :meth:`retire_completed`, bounding memory for very long runs.  All
        aggregate queries behave identically in both modes.
    """

    def __init__(self, record_trace: bool = True) -> None:
        self.record_trace = record_trace
        #: Live ops by id (all ops ever added in trace mode; the un-retired
        #: window otherwise).  Insertion-ordered.
        self._live: Dict[int, TimelineOp] = {}
        self._next_op_id = 0
        self._lane_free: Dict[Tuple[Stream, int], float] = {}
        # ---- incremental aggregates --------------------------------------
        self._makespan = 0.0
        self._lane_busy: Dict[Tuple[Stream, int], float] = {}
        self._lane_exposed: Dict[int, float] = {}
        self._device_set: set = set()
        self._category_count: Dict[str, int] = {}
        self._category_duration: Dict[str, float] = {}
        self._category_bytes: Dict[str, float] = {}
        self._retired_count = 0
        self._peak_live_ops = 0

    # ------------------------------------------------------------------
    def add(self, name: str, stream: Stream, duration: float,
            depends_on: Optional[Sequence[int]] = None,
            category: str = "generic", earliest_start: float = 0.0,
            device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        """Schedule an operation and return it (with start/end filled in).

        ``earliest_start`` gates the op on wall-clock time in addition to
        lane order and dependencies — used by the request scheduler so no
        work for a request starts before the request has arrived.
        ``device`` selects the GPU whose lane of ``stream`` the op joins;
        ``num_bytes`` is the transfer payload (byte aggregates only — it
        does not affect timing, the caller already folded bandwidth into
        ``duration``).
        """
        label = f"op {name!r} on lane ({stream.value}, device {device})"
        if duration < 0:
            raise ValueError(
                f"{label}: duration must be non-negative (got {duration})")
        if earliest_start < 0:
            raise ValueError(
                f"{label}: earliest_start must be non-negative (got {earliest_start})")
        if device < 0:
            raise ValueError(f"{label}: device must be non-negative")
        live = self._live
        deps = list(depends_on or [])
        ready = 0.0
        compute_dep_ready = 0.0
        for dep in deps:
            dep_op = live.get(dep)
            if dep_op is None:
                raise ValueError(
                    f"{label}: dependency {dep} does not reference a scheduled "
                    "op (retired, or never added)")
            if dep_op.end > ready:
                ready = dep_op.end
            if dep_op.stream is Stream.COMPUTE and dep_op.end > compute_dep_ready:
                compute_dep_ready = dep_op.end
        op_id = self._next_op_id
        self._next_op_id = op_id + 1
        op = TimelineOp(op_id=op_id, name=name, stream=stream,
                        duration=duration, depends_on=deps, category=category,
                        earliest_start=earliest_start, device=device,
                        num_bytes=num_bytes)
        lane = (stream, device)
        lane_free = self._lane_free.get(lane, 0.0)
        start = max(ready, lane_free, earliest_start)
        op.start = start
        end = start + duration
        op.end = end
        self._lane_free[lane] = end
        live[op_id] = op
        # ---- fold the op into the running aggregates ---------------------
        if end > self._makespan:
            self._makespan = end
        self._lane_busy[lane] = self._lane_busy.get(lane, 0.0) + duration
        self._device_set.add(device)
        self._category_count[category] = self._category_count.get(category, 0) + 1
        self._category_duration[category] = (
            self._category_duration.get(category, 0.0) + duration)
        if num_bytes:
            self._category_bytes[category] = (
                self._category_bytes.get(category, 0.0) + num_bytes)
        if stream is Stream.COMPUTE:
            # Online exposed-copy accounting: the op was compute-ready once
            # its lane drained, its compute-stream dependencies finished and
            # its arrival gate passed; any further wait is a stall on a
            # copy/stage/interconnect dependency — exposed transfer time.
            compute_ready = max(lane_free, compute_dep_ready, earliest_start)
            stall = start - compute_ready
            if stall > 0.0:
                self._lane_exposed[device] = (
                    self._lane_exposed.get(device, 0.0) + stall)
        if len(live) > self._peak_live_ops:
            self._peak_live_ops = len(live)
        return op

    def add_compute(self, name: str, duration: float,
                    depends_on: Optional[Sequence[int]] = None,
                    category: str = "compute", earliest_start: float = 0.0,
                    device: int = 0) -> TimelineOp:
        return self.add(name, Stream.COMPUTE, duration, depends_on, category,
                        earliest_start=earliest_start, device=device)

    def add_copy(self, name: str, duration: float,
                 depends_on: Optional[Sequence[int]] = None,
                 category: str = "copy", earliest_start: float = 0.0,
                 device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        return self.add(name, Stream.COPY, duration, depends_on, category,
                        earliest_start=earliest_start, device=device,
                        num_bytes=num_bytes)

    def add_stage(self, name: str, duration: float,
                  depends_on: Optional[Sequence[int]] = None,
                  category: str = "stage_in", earliest_start: float = 0.0,
                  device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        """Schedule an SSD→DRAM staging read on the stage copy stream."""
        return self.add(name, Stream.STAGE, duration, depends_on, category,
                        earliest_start=earliest_start, device=device,
                        num_bytes=num_bytes)

    def add_interconnect(self, name: str, duration: float,
                         depends_on: Optional[Sequence[int]] = None,
                         category: str = "alltoall",
                         num_bytes: float = 0.0) -> TimelineOp:
        """Schedule an all-to-all dispatch/combine on the interconnect queue."""
        return self.add(name, Stream.INTERCONNECT, duration, depends_on, category,
                        num_bytes=num_bytes)

    # ------------------------------------------------------------------
    # Batched op interface (the array-kernel entry point)
    # ------------------------------------------------------------------
    def begin_batch(self) -> OpBatch:
        """Start a columnar op batch whose ids continue this timeline's.

        The batch must be the *next* ops added (no interleaved :meth:`add`
        calls) and is applied with :meth:`commit_batch` / :meth:`add_ops`.
        """
        return OpBatch(self._next_op_id, self.record_trace)

    def commit_batch(self, batch: OpBatch) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve and fold in a batch; returns (starts, ends) arrays.

        The scalar engine's reference implementation simply replays the
        batch through :meth:`add`, one op at a time — bit-identical to
        having never batched.  :class:`ArrayTimeline` overrides this with
        the vectorized kernel.
        """
        if batch.base_id != self._next_op_id:
            raise RuntimeError(
                f"batch expects op ids from {batch.base_id} but the timeline "
                f"is at {self._next_op_id}; batches may not interleave with "
                "other adds")
        n = len(batch)
        starts = np.empty(n, dtype=np.float64)
        ends = np.empty(n, dtype=np.float64)
        offsets = batch.dep_offsets
        dep_ids = batch.dep_ids
        names = batch.names
        for i in range(n):
            op = self.add(
                names[i] if names is not None else f"op#{batch.base_id + i}",
                STREAMS[batch.stream[i]], batch.duration[i],
                depends_on=dep_ids[offsets[i]:offsets[i + 1]],
                category=category_name(batch.category[i]),
                earliest_start=batch.earliest[i], device=batch.device[i],
                num_bytes=batch.num_bytes[i])
            starts[i] = op.start
            ends[i] = op.end
        return starts, ends

    def add_ops(self, batch: OpBatch) -> Tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`commit_batch` (the batched ``add``)."""
        return self.commit_batch(batch)

    # ------------------------------------------------------------------
    # Analytic fast-forward (round replay)
    # ------------------------------------------------------------------
    def replay_snapshot(self) -> Dict[str, object]:
        """Copy of every aggregate round replay extrapolates (cheap dicts)."""
        return {
            "makespan": self._makespan,
            "lane_free": dict(self._lane_free),
            "lane_busy": dict(self._lane_busy),
            "lane_exposed": dict(self._lane_exposed),
            "category_count": dict(self._category_count),
            "category_duration": dict(self._category_duration),
            "category_bytes": dict(self._category_bytes),
        }

    def fast_forward(self, num_ops: int, makespan: float,
                     lane_free: Dict[Tuple[Stream, int], float],
                     lane_busy: Dict[Tuple[Stream, int], float],
                     lane_exposed: Dict[int, float],
                     category_count: Dict[str, int],
                     category_duration: Dict[str, float],
                     category_bytes: Dict[str, float]) -> None:
        """Apply a closed-form round-replay window to the aggregates.

        The caller (the scheduler's replay controller) has analytically
        advanced ``num_ops`` operations' worth of identical-shape rounds and
        supplies the resulting *absolute* aggregate values.  Lane clocks and
        aggregates jump; no per-op state is created, which is the point.
        Refused in trace mode — a trace must contain every op it claims to
        cover.
        """
        if self.record_trace:
            raise RuntimeError(
                "fast_forward is not available on a trace-recording timeline; "
                "round replay requires record_trace=False")
        if num_ops < 0:
            raise ValueError("num_ops must be non-negative")
        if makespan < self._makespan:
            raise ValueError(
                f"fast_forward may not rewind the makespan "
                f"({makespan} < {self._makespan})")
        self._next_op_id += num_ops
        self._retired_count += num_ops
        self._makespan = makespan
        self._lane_free.update(lane_free)
        self._lane_busy.update(lane_busy)
        self._lane_exposed.update(lane_exposed)
        self._category_count.update(category_count)
        self._category_duration.update(category_duration)
        self._category_bytes.update(category_bytes)

    # ------------------------------------------------------------------
    # Op retirement (bounded-memory serving mode)
    # ------------------------------------------------------------------
    def retire_completed(self, keep: Iterable[int] = ()) -> int:
        """Drop ops no future dependency can reference; returns the count.

        Only meaningful with ``record_trace=False`` (a no-op in trace mode —
        the trace is the point).  ``keep`` lists op ids that *may* still be
        named by future :meth:`add` calls (e.g. a request's trailing
        all-to-all combine carried into its next pass); everything else is
        retired.  The caller owns the invariant: after this call, adding an
        op that depends on a retired id raises.  Aggregates and lane clocks
        are unaffected — retirement frees memory, never rewrites history.
        """
        if self.record_trace:
            return 0
        keep_set = set(keep)
        live = self._live
        if keep_set:
            retired = [op_id for op_id in live if op_id not in keep_set]
        else:
            retired = list(live)
        for op_id in retired:
            del live[op_id]
        self._retired_count += len(retired)
        return len(retired)

    # ------------------------------------------------------------------
    # Queries (all O(1) / O(#lanes), served from the running aggregates)
    # ------------------------------------------------------------------
    def op(self, op_id: int) -> TimelineOp:
        try:
            return self._live[op_id]
        except KeyError:
            raise KeyError(
                f"op {op_id} is not live (retired, or never scheduled)") from None

    @property
    def num_ops(self) -> int:
        """Total operations ever scheduled (retired ops included)."""
        return self._next_op_id

    @property
    def live_op_count(self) -> int:
        """Operations currently held in memory."""
        return len(self._live)

    @property
    def peak_live_ops(self) -> int:
        """High-water mark of resident ops (== :attr:`num_ops` in trace mode)."""
        return self._peak_live_ops

    @property
    def ops(self) -> List[TimelineOp]:
        self._require_trace("ops")
        return list(self._live.values())

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return self._makespan

    def stream_busy_time(self, stream: Stream, device: Optional[int] = None) -> float:
        if device is not None:
            return self._lane_busy.get((stream, device), 0.0)
        return sum(busy for (s, _), busy in self._lane_busy.items() if s is stream)

    def stream_ops(self, stream: Stream, device: Optional[int] = None) -> List[TimelineOp]:
        self._require_trace("stream_ops")
        return [op for op in self._live.values()
                if op.stream == stream and (device is None or op.device == device)]

    def devices(self) -> List[int]:
        """Device ids that have scheduled at least one op (sorted)."""
        return sorted(self._device_set)

    def device_utilisation(self, device: int) -> float:
        """Fraction of the makespan the device's compute lane was busy."""
        total = self._makespan
        if total <= 0.0:
            return 0.0
        return self._lane_busy.get((Stream.COMPUTE, device), 0.0) / total

    def category_time(self, category: str) -> float:
        return self._category_duration.get(category, 0.0)

    def category_count(self, category: str) -> int:
        """Number of ops scheduled under ``category`` (O(1))."""
        return self._category_count.get(category, 0)

    def category_bytes(self, category: str) -> float:
        """Total payload bytes of ``category``'s transfer ops (O(1))."""
        return self._category_bytes.get(category, 0.0)

    def ops_by_category(self, category: str) -> List[TimelineOp]:
        self._require_trace("ops_by_category")
        return [op for op in self._live.values() if op.category == category]

    def exposed_copy_time(self, device: Optional[int] = None) -> float:
        """Copy time not hidden under compute: the headline "how much
        migration latency was NOT overlapped" metric of the paper.

        Measured as the sum, over each device's compute-lane ops, of the
        stall each op suffers beyond its compute-side readiness: an op is
        "compute-ready" once the previous op of its lane has retired, its
        compute-stream dependencies have finished and its ``earliest_start``
        (request arrival) has passed.  Any additional wait is, by
        elimination, a stall on a copy/stage/interconnect dependency — i.e.
        exposed transfer time.  Idle gaps caused by compute-side dependencies
        or by waiting for request arrivals are *not* counted.

        Accumulated online as ops are added; ``device`` restricts the total
        to one compute lane.
        """
        if device is not None:
            return self._lane_exposed.get(device, 0.0)
        return sum(self._lane_exposed[d] for d in sorted(self._lane_exposed))

    def stream_free_time(self, stream: Stream, device: Optional[int] = None) -> float:
        """Time at which ``stream`` becomes free for the next queued op.

        With ``device=None`` this is the latest free time over every device's
        lane of the stream — "when is the whole replica's compute free".
        """
        if device is not None:
            return self._lane_free.get((stream, device), 0.0)
        lanes = [t for (s, _), t in self._lane_free.items() if s == stream]
        return max(lanes, default=0.0)

    def overlap_efficiency(self) -> float:
        """Fraction of copy-stream time hidden under compute (1.0 = fully hidden)."""
        copy_busy = self.stream_busy_time(Stream.COPY)
        if copy_busy == 0.0:
            return 1.0
        exposed = self.exposed_copy_time()
        return max(0.0, 1.0 - exposed / copy_busy)

    # ------------------------------------------------------------------
    # Scan-based reference implementations (trace mode only)
    # ------------------------------------------------------------------
    # These recompute the aggregates from the recorded trace, exactly as the
    # original O(n) queries did.  They exist so the parity tests can pin the
    # incremental aggregates against first-principles scans; production code
    # should use the O(1) properties above.
    def _require_trace(self, what: str) -> None:
        if not self.record_trace:
            raise RuntimeError(
                f"{what} needs the recorded trace; this timeline was built "
                "with record_trace=False (aggregate queries remain available)")

    def scan_makespan(self) -> float:
        self._require_trace("scan_makespan")
        return max((op.end for op in self._live.values()), default=0.0)

    def scan_stream_busy_time(self, stream: Stream,
                              device: Optional[int] = None) -> float:
        self._require_trace("scan_stream_busy_time")
        return sum(op.duration for op in self._live.values()
                   if op.stream == stream and (device is None or op.device == device))

    def scan_category_time(self, category: str) -> float:
        self._require_trace("scan_category_time")
        return sum(op.duration for op in self._live.values() if op.category == category)

    def scan_exposed_copy_time(self) -> float:
        self._require_trace("scan_exposed_copy_time")
        exposed = 0.0
        for device in self.devices():
            prev_end = 0.0
            for op in self.stream_ops(Stream.COMPUTE, device):
                compute_dep_ready = max(
                    (self._live[d].end for d in op.depends_on
                     if self._live[d].stream == Stream.COMPUTE), default=0.0)
                compute_ready = max(prev_end, compute_dep_ready, op.earliest_start)
                exposed += max(0.0, op.start - compute_ready)
                prev_end = op.end
        return exposed

    # ------------------------------------------------------------------
    # Rendering (Figure 9 style traces)
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 80, label_width: int = 28) -> str:
        """Render a compact two-row Gantt chart of the timeline.

        A quick terminal sketch; for a zoomable, queryable view export the
        timeline with :func:`repro.obs.trace_export.write_chrome_trace`
        and open it in Perfetto / chrome://tracing.
        """
        self._require_trace("render_ascii")
        if not self._live:
            return "(empty timeline)"
        total = self.makespan
        lines = []
        devices = self.devices()
        multi_device = devices != [0]
        lanes: List[Tuple[Stream, int]] = []
        for stream in (Stream.COMPUTE, Stream.COPY):
            lanes.extend((stream, d) for d in devices
                         if d == 0 or self.stream_ops(stream, d))
        for stream in (Stream.STAGE, Stream.INTERCONNECT):
            lanes.extend((stream, d) for d in devices if self.stream_ops(stream, d))
        for stream, device in lanes:
            cells = [" "] * width
            for op in self.stream_ops(stream, device):
                lo = int(op.start / total * (width - 1)) if total else 0
                hi = max(lo + 1, int(op.end / total * (width - 1)) + 1) if total else 1
                symbol = op.name[0].upper() if op.name else "#"
                for i in range(lo, min(hi, width)):
                    cells[i] = symbol
            name = f"{stream.value}[{device}]" if multi_device else stream.value
            label = f"{name:<{label_width}}"[:label_width]
            lines.append(f"{label}|{''.join(cells)}|")
        lines.append(f"{'(makespan)':<{label_width}} {total * 1e3:.3f} ms")
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """Timeline as a list of dictionaries (CSV emission / reporting /
        the Perfetto exporter in :mod:`repro.obs.trace_export`)."""
        self._require_trace("to_records")
        return [
            {
                "op_id": op.op_id,
                "name": op.name,
                "stream": op.stream.value,
                "device": op.device,
                "category": op.category,
                "start": op.start,
                "end": op.end,
                "duration": op.duration,
                "num_bytes": op.num_bytes,
                "earliest_start": op.earliest_start,
            }
            for op in self._live.values()
        ]


class _LaneStore:
    """Growable columnar op storage for one (stream, device) lane.

    Preallocated numpy columns (doubling growth) for the numeric fields;
    names and dependency tuples stay Python lists (ragged).  Only built in
    trace mode — no-trace array timelines store no per-op state at all.
    """

    __slots__ = ("size", "op_id", "start", "end", "duration", "num_bytes",
                 "earliest", "category", "names", "deps")

    _COLUMNS = ("op_id", "start", "end", "duration", "num_bytes",
                "earliest", "category")

    def __init__(self, capacity: int = 256) -> None:
        self.size = 0
        self.op_id = np.empty(capacity, dtype=np.int64)
        self.start = np.empty(capacity, dtype=np.float64)
        self.end = np.empty(capacity, dtype=np.float64)
        self.duration = np.empty(capacity, dtype=np.float64)
        self.num_bytes = np.empty(capacity, dtype=np.float64)
        self.earliest = np.empty(capacity, dtype=np.float64)
        self.category = np.empty(capacity, dtype=np.int32)
        self.names: List[str] = []
        self.deps: List[Tuple[int, ...]] = []

    def append(self, op_id: int, start: float, end: float, duration: float,
               num_bytes: float, earliest: float, category: int,
               name: str, deps: Tuple[int, ...]) -> None:
        row = self.size
        if row == len(self.op_id):
            for column in self._COLUMNS:
                old = getattr(self, column)
                grown = np.empty(2 * len(old), dtype=old.dtype)
                grown[:row] = old
                setattr(self, column, grown)
        self.op_id[row] = op_id
        self.start[row] = start
        self.end[row] = end
        self.duration[row] = duration
        self.num_bytes[row] = num_bytes
        self.earliest[row] = earliest
        self.category[row] = category
        self.names.append(name)
        self.deps.append(deps)
        self.size = row + 1


class ArrayTimeline(ExecutionTimeline):
    """Array-backed timeline engine: same API, columnar hot path.

    Ops arrive as :class:`OpBatch` columns (one batch per scheduling round)
    and are resolved by a tight loop over primitive lists — no
    :class:`TimelineOp` objects, no per-op name strings, no per-op attribute
    access — followed by vectorized per-batch folds of the category/lane
    aggregates.  Dependency lookups hit a plain ``{op_id: (end, stream)}``
    dict for cross-batch deps and the in-flight ``ends`` list for
    intra-batch deps.

    Start times are the same ``max(dep ready, lane free, earliest_start)``
    chain the scalar engine computes, in the same order, so all *time*
    results (starts, ends, makespan, token clocks) are bit-identical to
    :class:`ExecutionTimeline`.  Summed aggregates (lane busy time, category
    durations) are folded per batch with :func:`numpy.bincount` instead of
    per op, which reassociates the float additions — the parity tests pin
    them to the scalar engine at 1e-9.

    With ``record_trace=True`` each committed op is also appended to
    preallocated, growable per-lane column arrays (:class:`_LaneStore`);
    trace queries (``ops``, ``render_ascii``, ``to_records``, ``scan_*``)
    lazily materialise :class:`TimelineOp` objects from the columns, so the
    full trace API keeps working at reconstruction cost only when asked.
    """

    def __init__(self, record_trace: bool = False) -> None:
        super().__init__(record_trace=record_trace)
        #: Live dependency info by op id: (end time, stream code).
        self._live_info: Dict[int, Tuple[float, int]] = {}
        self._lanes: Dict[Tuple[Stream, int], _LaneStore] = {}
        self._trace_dirty = False

    # ------------------------------------------------------------------
    # Scalar add routes through the kernel (one-op batch)
    # ------------------------------------------------------------------
    def add(self, name: str, stream: Stream, duration: float,
            depends_on: Optional[Sequence[int]] = None,
            category: str = "generic", earliest_start: float = 0.0,
            device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        # One-op batch; the name is always kept so validation errors can
        # point at the op even in no-trace mode.
        batch = OpBatch(self._next_op_id, record_names=True)
        deps = list(depends_on or [])
        batch.add(STREAM_CODE[stream], duration, deps=deps,
                  category=category_code(category), device=device,
                  earliest_start=earliest_start, num_bytes=num_bytes,
                  name=name)
        starts, ends = self.commit_batch(batch)
        return TimelineOp(op_id=batch.base_id, name=name, stream=stream,
                          duration=duration, depends_on=deps,
                          category=category, start=float(starts[0]),
                          end=float(ends[0]), earliest_start=earliest_start,
                          device=device, num_bytes=num_bytes)

    # ------------------------------------------------------------------
    # The kernel
    # ------------------------------------------------------------------
    def commit_batch(self, batch: OpBatch) -> Tuple[np.ndarray, np.ndarray]:
        if batch.base_id != self._next_op_id:
            raise RuntimeError(
                f"batch expects op ids from {batch.base_id} but the timeline "
                f"is at {self._next_op_id}; batches may not interleave with "
                "other adds")
        n = len(batch)
        if n == 0:
            return (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64))
        streams_t = STREAMS
        stream_codes = batch.stream
        devices = batch.device
        durations = batch.duration
        earliest = batch.earliest
        dep_ids = batch.dep_ids
        offsets = batch.dep_offsets
        base = batch.base_id
        starts: List[float] = [0.0] * n
        ends: List[float] = [0.0] * n
        lane_free = self._lane_free
        live_info = self._live_info
        exposed = self._lane_exposed
        for i in range(n):
            duration = durations[i]
            earliest_start = earliest[i]
            device = devices[i]
            if duration < 0 or earliest_start < 0 or device < 0:
                self._raise_invalid_op(batch, i)
            s_code = stream_codes[i]
            lane = (streams_t[s_code], device)
            free = lane_free.get(lane, 0.0)
            ready = 0.0
            compute_ready = 0.0
            for k in range(offsets[i], offsets[i + 1]):
                dep = dep_ids[k]
                if dep >= base:
                    j = dep - base
                    if j >= i:
                        self._raise_bad_dep(batch, i, dep)
                    dep_end = ends[j]
                    dep_stream = stream_codes[j]
                else:
                    info = live_info.get(dep)
                    if info is None:
                        self._raise_bad_dep(batch, i, dep)
                    dep_end, dep_stream = info
                if dep_end > ready:
                    ready = dep_end
                if dep_stream == _COMPUTE_CODE and dep_end > compute_ready:
                    compute_ready = dep_end
            start = free
            if ready > start:
                start = ready
            if earliest_start > start:
                start = earliest_start
            end = start + duration
            lane_free[lane] = end
            starts[i] = start
            ends[i] = end
            live_info[base + i] = (end, s_code)
            if s_code == _COMPUTE_CODE:
                # Online exposed-copy accounting, same definition as the
                # scalar engine: stall beyond compute-side readiness.
                stall_floor = free
                if compute_ready > stall_floor:
                    stall_floor = compute_ready
                if earliest_start > stall_floor:
                    stall_floor = earliest_start
                stall = start - stall_floor
                if stall > 0.0:
                    exposed[device] = exposed.get(device, 0.0) + stall
        self._next_op_id = base + n
        starts_arr = np.array(starts)
        ends_arr = np.array(ends)
        # ---- vectorized per-batch aggregate folds ------------------------
        duration_arr = np.array(durations)
        batch_makespan = float(ends_arr.max())
        if batch_makespan > self._makespan:
            self._makespan = batch_makespan
        stream_arr = np.array(stream_codes, dtype=np.int64)
        device_arr = np.array(devices, dtype=np.int64)
        lane_keys = (stream_arr << 32) | device_arr
        unique_lanes, inverse = np.unique(lane_keys, return_inverse=True)
        lane_sums = np.bincount(inverse, weights=duration_arr)
        lane_busy = self._lane_busy
        for key, busy in zip(unique_lanes.tolist(), lane_sums.tolist()):
            lane = (streams_t[key >> 32], key & 0xFFFFFFFF)
            lane_busy[lane] = lane_busy.get(lane, 0.0) + busy
        self._device_set.update(devices)
        category_arr = np.array(batch.category, dtype=np.int64)
        num_categories = len(_CATEGORY_NAMES)
        counts = np.bincount(category_arr, minlength=num_categories)
        duration_sums = np.bincount(category_arr, weights=duration_arr,
                                    minlength=num_categories)
        bytes_arr = np.array(batch.num_bytes)
        byte_sums = np.bincount(category_arr, weights=bytes_arr,
                                minlength=num_categories)
        category_count = self._category_count
        category_duration = self._category_duration
        category_bytes = self._category_bytes
        for code in np.nonzero(counts)[0].tolist():
            name = _CATEGORY_NAMES[code]
            category_count[name] = category_count.get(name, 0) + int(counts[code])
            category_duration[name] = (
                category_duration.get(name, 0.0) + float(duration_sums[code]))
            if byte_sums[code]:
                category_bytes[name] = (
                    category_bytes.get(name, 0.0) + float(byte_sums[code]))
        if len(live_info) > self._peak_live_ops:
            self._peak_live_ops = len(live_info)
        if self.record_trace:
            self._store_trace_rows(batch, starts, ends)
        return starts_arr, ends_arr

    def _raise_invalid_op(self, batch: OpBatch, index: int) -> None:
        label = batch.op_label(index)
        if batch.duration[index] < 0:
            raise ValueError(f"{label}: duration must be non-negative "
                             f"(got {batch.duration[index]})")
        if batch.earliest[index] < 0:
            raise ValueError(f"{label}: earliest_start must be non-negative "
                             f"(got {batch.earliest[index]})")
        raise ValueError(f"{label}: device must be non-negative")

    def _raise_bad_dep(self, batch: OpBatch, index: int, dep: int) -> None:
        raise ValueError(
            f"{batch.op_label(index)}: dependency {dep} does not reference a "
            "scheduled op (retired, later in the batch, or never added)")

    # ------------------------------------------------------------------
    # Retirement / live-window bookkeeping
    # ------------------------------------------------------------------
    def retire_completed(self, keep: Iterable[int] = ()) -> int:
        if self.record_trace:
            return 0
        keep_set = set(keep)
        live = self._live_info
        if keep_set:
            retired = [op_id for op_id in live if op_id not in keep_set]
        else:
            retired = list(live)
        for op_id in retired:
            del live[op_id]
        self._retired_count += len(retired)
        return len(retired)

    @property
    def live_op_count(self) -> int:
        return len(self._live_info)

    def op(self, op_id: int) -> TimelineOp:
        if self.record_trace:
            self._materialise()
            return super().op(op_id)
        raise KeyError(
            f"op {op_id} is not addressable: an ArrayTimeline keeps no op "
            "objects with record_trace=False")

    # ------------------------------------------------------------------
    # Trace reconstruction (columns → TimelineOp objects, on demand)
    # ------------------------------------------------------------------
    def _store_trace_rows(self, batch: OpBatch, starts: Sequence[float],
                          ends: Sequence[float]) -> None:
        lanes = self._lanes
        offsets = batch.dep_offsets
        names = batch.names
        for i in range(len(batch)):
            lane = (STREAMS[batch.stream[i]], batch.device[i])
            store = lanes.get(lane)
            if store is None:
                store = lanes[lane] = _LaneStore()
            store.append(batch.base_id + i, starts[i], ends[i],
                         batch.duration[i], batch.num_bytes[i],
                         batch.earliest[i], batch.category[i],
                         names[i] if names is not None else "",
                         tuple(batch.dep_ids[offsets[i]:offsets[i + 1]]))
        self._trace_dirty = True

    def _require_trace(self, what: str) -> None:
        super()._require_trace(what)
        self._materialise()

    def _materialise(self) -> None:
        if not self._trace_dirty:
            return
        ops: List[TimelineOp] = []
        for (stream, device), store in self._lanes.items():
            for row in range(store.size):
                ops.append(TimelineOp(
                    op_id=int(store.op_id[row]), name=store.names[row],
                    stream=stream, duration=float(store.duration[row]),
                    depends_on=list(store.deps[row]),
                    category=category_name(int(store.category[row])),
                    start=float(store.start[row]), end=float(store.end[row]),
                    earliest_start=float(store.earliest[row]), device=device,
                    num_bytes=float(store.num_bytes[row])))
        ops.sort(key=lambda op: op.op_id)
        self._live.clear()
        for op in ops:
            self._live[op.op_id] = op
        self._trace_dirty = False


#: Timeline engine registry: scheduler knob value → constructor.
TIMELINE_ENGINES = {
    "scalar": ExecutionTimeline,
    "array": ArrayTimeline,
}


def make_timeline(engine: str, record_trace: bool = True) -> ExecutionTimeline:
    """Construct a timeline by engine name (``scalar`` or ``array``)."""
    try:
        factory = TIMELINE_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown timeline engine {engine!r}; "
            f"known: {sorted(TIMELINE_ENGINES)}") from None
    return factory(record_trace=record_trace)
