"""Multi-stream discrete-event execution timeline.

Models the hardware queues that matter for MoE offloading performance:

* the **compute stream** — GPU kernels execute in issue order;
* the **copy stream** — DRAM→GPU (or SSD→GPU) expert transfers execute in
  issue order, concurrently with the compute stream;
* the **stage stream** — SSD→DRAM staging reads, used when a host-DRAM
  staging cache fronts SSD-resident experts: the SSD read of one expert
  proceeds concurrently with *both* GPU compute and another expert's PCIe
  copy, which is exactly the decoupling a staging buffer buys.

An operation may declare dependencies on other operations (by id); it starts
at the later of (a) the time its stream becomes free and (b) the completion
of all its dependencies.  This is exactly the overlap semantics of CUDA
streams with events, and is what produces Figure 9's execution timelines:
MoE-OnDemand's transfers depend on the same block's gate (serialised),
whereas Pre-gated MoE's transfers depend only on the *previous* block's
pre-gate and therefore overlap with expert execution.

Performance model of the timeline itself
----------------------------------------
Every aggregate a load test asks about — :attr:`~ExecutionTimeline.makespan`,
per-lane busy time, device utilisation, exposed copy time, per-category op
counts/durations/bytes — is maintained *incrementally* inside :meth:`add`,
so querying them is O(1) regardless of how many ops were ever scheduled.
(The original implementation recomputed them by scanning the full op list;
called once per decoder iteration that made serving loads accidentally
quadratic in request count.)

For long serving runs the trace itself is the memory bottleneck: a
100k-request load schedules hundreds of millions of ops.  Constructing the
timeline with ``record_trace=False`` keeps only the *live* ops — those a
future op may still name as a dependency — and lets the owner retire ops it
knows can no longer be referenced (:meth:`retire_completed`).  Aggregates
are unaffected (they never consult the trace); trace-only queries
(:attr:`ops`, :meth:`render_ascii`, :meth:`to_records`, the ``scan_*``
reference implementations) raise in this mode.  The continuous-batching
scheduler serves with ``record_trace=False`` by default and retires each
round's ops as the round completes, keeping resident op count O(active
window) instead of O(total ops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Stream(Enum):
    """Hardware queue an operation executes on."""

    COMPUTE = "compute"
    COPY = "copy"
    #: Second copy queue: SSD→DRAM staging reads (the coldest hop of a
    #: multi-hop expert fetch), overlapping both compute and PCIe copies.
    STAGE = "stage"
    #: Intra-node GPU↔GPU interconnect (NVLink / PCIe-P2P): all-to-all
    #: token dispatch/combine traffic of expert-parallel replicas.
    INTERCONNECT = "interconnect"


@dataclass
class TimelineOp:
    """One scheduled operation (a kernel or a transfer)."""

    op_id: int
    name: str
    stream: Stream
    duration: float
    depends_on: List[int] = field(default_factory=list)
    category: str = "generic"
    start: float = 0.0
    end: float = 0.0
    #: Wall-clock time before which the op may not start regardless of
    #: stream/dependency readiness (e.g. the arrival time of the request it
    #: belongs to, for open-loop load simulations).
    earliest_start: float = 0.0
    #: GPU the op's queue belongs to.  Each (stream, device) pair is its own
    #: FIFO lane, so device 1's compute proceeds concurrently with device 0's
    #: (expert parallelism); single-GPU timelines leave every op on device 0.
    #: Interconnect ops are replica-wide and always use device 0.
    device: int = 0
    #: Payload bytes the op moves (transfers) — feeds the per-category byte
    #: aggregates; 0 for kernels.
    num_bytes: float = 0.0

    @property
    def scheduled(self) -> bool:
        return self.end > 0.0 or self.duration == 0.0


class ExecutionTimeline:
    """Schedules operations on per-device compute/copy/stage lanes.

    Operations are scheduled eagerly as they are added (each (stream, device)
    lane is FIFO and dependencies must already exist), so querying times is
    O(1) and the object doubles as an execution trace.  A single-GPU replica
    uses only device 0's lanes, which reproduces the original two-stream
    timeline exactly.

    Parameters
    ----------
    record_trace:
        ``True`` (default) keeps every op for rendering / record export (the
        Figure 9 trace mode).  ``False`` keeps only ops that may still be
        referenced as dependencies; the owner retires finished ops via
        :meth:`retire_completed`, bounding memory for very long runs.  All
        aggregate queries behave identically in both modes.
    """

    def __init__(self, record_trace: bool = True) -> None:
        self.record_trace = record_trace
        #: Live ops by id (all ops ever added in trace mode; the un-retired
        #: window otherwise).  Insertion-ordered.
        self._live: Dict[int, TimelineOp] = {}
        self._next_op_id = 0
        self._lane_free: Dict[Tuple[Stream, int], float] = {}
        # ---- incremental aggregates --------------------------------------
        self._makespan = 0.0
        self._lane_busy: Dict[Tuple[Stream, int], float] = {}
        self._lane_exposed: Dict[int, float] = {}
        self._device_set: set = set()
        self._category_count: Dict[str, int] = {}
        self._category_duration: Dict[str, float] = {}
        self._category_bytes: Dict[str, float] = {}
        self._retired_count = 0
        self._peak_live_ops = 0

    # ------------------------------------------------------------------
    def add(self, name: str, stream: Stream, duration: float,
            depends_on: Optional[Sequence[int]] = None,
            category: str = "generic", earliest_start: float = 0.0,
            device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        """Schedule an operation and return it (with start/end filled in).

        ``earliest_start`` gates the op on wall-clock time in addition to
        lane order and dependencies — used by the request scheduler so no
        work for a request starts before the request has arrived.
        ``device`` selects the GPU whose lane of ``stream`` the op joins;
        ``num_bytes`` is the transfer payload (byte aggregates only — it
        does not affect timing, the caller already folded bandwidth into
        ``duration``).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if earliest_start < 0:
            raise ValueError("earliest_start must be non-negative")
        if device < 0:
            raise ValueError("device must be non-negative")
        live = self._live
        deps = list(depends_on or [])
        ready = 0.0
        compute_dep_ready = 0.0
        for dep in deps:
            dep_op = live.get(dep)
            if dep_op is None:
                raise ValueError(f"dependency {dep} does not reference a scheduled op")
            if dep_op.end > ready:
                ready = dep_op.end
            if dep_op.stream is Stream.COMPUTE and dep_op.end > compute_dep_ready:
                compute_dep_ready = dep_op.end
        op_id = self._next_op_id
        self._next_op_id = op_id + 1
        op = TimelineOp(op_id=op_id, name=name, stream=stream,
                        duration=duration, depends_on=deps, category=category,
                        earliest_start=earliest_start, device=device,
                        num_bytes=num_bytes)
        lane = (stream, device)
        lane_free = self._lane_free.get(lane, 0.0)
        start = max(ready, lane_free, earliest_start)
        op.start = start
        end = start + duration
        op.end = end
        self._lane_free[lane] = end
        live[op_id] = op
        # ---- fold the op into the running aggregates ---------------------
        if end > self._makespan:
            self._makespan = end
        self._lane_busy[lane] = self._lane_busy.get(lane, 0.0) + duration
        self._device_set.add(device)
        self._category_count[category] = self._category_count.get(category, 0) + 1
        self._category_duration[category] = (
            self._category_duration.get(category, 0.0) + duration)
        if num_bytes:
            self._category_bytes[category] = (
                self._category_bytes.get(category, 0.0) + num_bytes)
        if stream is Stream.COMPUTE:
            # Online exposed-copy accounting: the op was compute-ready once
            # its lane drained, its compute-stream dependencies finished and
            # its arrival gate passed; any further wait is a stall on a
            # copy/stage/interconnect dependency — exposed transfer time.
            compute_ready = max(lane_free, compute_dep_ready, earliest_start)
            stall = start - compute_ready
            if stall > 0.0:
                self._lane_exposed[device] = (
                    self._lane_exposed.get(device, 0.0) + stall)
        if len(live) > self._peak_live_ops:
            self._peak_live_ops = len(live)
        return op

    def add_compute(self, name: str, duration: float,
                    depends_on: Optional[Sequence[int]] = None,
                    category: str = "compute", earliest_start: float = 0.0,
                    device: int = 0) -> TimelineOp:
        return self.add(name, Stream.COMPUTE, duration, depends_on, category,
                        earliest_start=earliest_start, device=device)

    def add_copy(self, name: str, duration: float,
                 depends_on: Optional[Sequence[int]] = None,
                 category: str = "copy", earliest_start: float = 0.0,
                 device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        return self.add(name, Stream.COPY, duration, depends_on, category,
                        earliest_start=earliest_start, device=device,
                        num_bytes=num_bytes)

    def add_stage(self, name: str, duration: float,
                  depends_on: Optional[Sequence[int]] = None,
                  category: str = "stage_in", earliest_start: float = 0.0,
                  device: int = 0, num_bytes: float = 0.0) -> TimelineOp:
        """Schedule an SSD→DRAM staging read on the stage copy stream."""
        return self.add(name, Stream.STAGE, duration, depends_on, category,
                        earliest_start=earliest_start, device=device,
                        num_bytes=num_bytes)

    def add_interconnect(self, name: str, duration: float,
                         depends_on: Optional[Sequence[int]] = None,
                         category: str = "alltoall",
                         num_bytes: float = 0.0) -> TimelineOp:
        """Schedule an all-to-all dispatch/combine on the interconnect queue."""
        return self.add(name, Stream.INTERCONNECT, duration, depends_on, category,
                        num_bytes=num_bytes)

    # ------------------------------------------------------------------
    # Op retirement (bounded-memory serving mode)
    # ------------------------------------------------------------------
    def retire_completed(self, keep: Iterable[int] = ()) -> int:
        """Drop ops no future dependency can reference; returns the count.

        Only meaningful with ``record_trace=False`` (a no-op in trace mode —
        the trace is the point).  ``keep`` lists op ids that *may* still be
        named by future :meth:`add` calls (e.g. a request's trailing
        all-to-all combine carried into its next pass); everything else is
        retired.  The caller owns the invariant: after this call, adding an
        op that depends on a retired id raises.  Aggregates and lane clocks
        are unaffected — retirement frees memory, never rewrites history.
        """
        if self.record_trace:
            return 0
        keep_set = set(keep)
        live = self._live
        if keep_set:
            retired = [op_id for op_id in live if op_id not in keep_set]
        else:
            retired = list(live)
        for op_id in retired:
            del live[op_id]
        self._retired_count += len(retired)
        return len(retired)

    # ------------------------------------------------------------------
    # Queries (all O(1) / O(#lanes), served from the running aggregates)
    # ------------------------------------------------------------------
    def op(self, op_id: int) -> TimelineOp:
        try:
            return self._live[op_id]
        except KeyError:
            raise KeyError(
                f"op {op_id} is not live (retired, or never scheduled)") from None

    @property
    def num_ops(self) -> int:
        """Total operations ever scheduled (retired ops included)."""
        return self._next_op_id

    @property
    def live_op_count(self) -> int:
        """Operations currently held in memory."""
        return len(self._live)

    @property
    def peak_live_ops(self) -> int:
        """High-water mark of resident ops (== :attr:`num_ops` in trace mode)."""
        return self._peak_live_ops

    @property
    def ops(self) -> List[TimelineOp]:
        self._require_trace("ops")
        return list(self._live.values())

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return self._makespan

    def stream_busy_time(self, stream: Stream, device: Optional[int] = None) -> float:
        if device is not None:
            return self._lane_busy.get((stream, device), 0.0)
        return sum(busy for (s, _), busy in self._lane_busy.items() if s is stream)

    def stream_ops(self, stream: Stream, device: Optional[int] = None) -> List[TimelineOp]:
        self._require_trace("stream_ops")
        return [op for op in self._live.values()
                if op.stream == stream and (device is None or op.device == device)]

    def devices(self) -> List[int]:
        """Device ids that have scheduled at least one op (sorted)."""
        return sorted(self._device_set)

    def device_utilisation(self, device: int) -> float:
        """Fraction of the makespan the device's compute lane was busy."""
        total = self._makespan
        if total <= 0.0:
            return 0.0
        return self._lane_busy.get((Stream.COMPUTE, device), 0.0) / total

    def category_time(self, category: str) -> float:
        return self._category_duration.get(category, 0.0)

    def category_count(self, category: str) -> int:
        """Number of ops scheduled under ``category`` (O(1))."""
        return self._category_count.get(category, 0)

    def category_bytes(self, category: str) -> float:
        """Total payload bytes of ``category``'s transfer ops (O(1))."""
        return self._category_bytes.get(category, 0.0)

    def ops_by_category(self, category: str) -> List[TimelineOp]:
        self._require_trace("ops_by_category")
        return [op for op in self._live.values() if op.category == category]

    def exposed_copy_time(self, device: Optional[int] = None) -> float:
        """Copy time not hidden under compute: the headline "how much
        migration latency was NOT overlapped" metric of the paper.

        Measured as the sum, over each device's compute-lane ops, of the
        stall each op suffers beyond its compute-side readiness: an op is
        "compute-ready" once the previous op of its lane has retired, its
        compute-stream dependencies have finished and its ``earliest_start``
        (request arrival) has passed.  Any additional wait is, by
        elimination, a stall on a copy/stage/interconnect dependency — i.e.
        exposed transfer time.  Idle gaps caused by compute-side dependencies
        or by waiting for request arrivals are *not* counted.

        Accumulated online as ops are added; ``device`` restricts the total
        to one compute lane.
        """
        if device is not None:
            return self._lane_exposed.get(device, 0.0)
        return sum(self._lane_exposed[d] for d in sorted(self._lane_exposed))

    def stream_free_time(self, stream: Stream, device: Optional[int] = None) -> float:
        """Time at which ``stream`` becomes free for the next queued op.

        With ``device=None`` this is the latest free time over every device's
        lane of the stream — "when is the whole replica's compute free".
        """
        if device is not None:
            return self._lane_free.get((stream, device), 0.0)
        lanes = [t for (s, _), t in self._lane_free.items() if s == stream]
        return max(lanes, default=0.0)

    def overlap_efficiency(self) -> float:
        """Fraction of copy-stream time hidden under compute (1.0 = fully hidden)."""
        copy_busy = self.stream_busy_time(Stream.COPY)
        if copy_busy == 0.0:
            return 1.0
        exposed = self.exposed_copy_time()
        return max(0.0, 1.0 - exposed / copy_busy)

    # ------------------------------------------------------------------
    # Scan-based reference implementations (trace mode only)
    # ------------------------------------------------------------------
    # These recompute the aggregates from the recorded trace, exactly as the
    # original O(n) queries did.  They exist so the parity tests can pin the
    # incremental aggregates against first-principles scans; production code
    # should use the O(1) properties above.
    def _require_trace(self, what: str) -> None:
        if not self.record_trace:
            raise RuntimeError(
                f"{what} needs the recorded trace; this timeline was built "
                "with record_trace=False (aggregate queries remain available)")

    def scan_makespan(self) -> float:
        self._require_trace("scan_makespan")
        return max((op.end for op in self._live.values()), default=0.0)

    def scan_stream_busy_time(self, stream: Stream,
                              device: Optional[int] = None) -> float:
        self._require_trace("scan_stream_busy_time")
        return sum(op.duration for op in self._live.values()
                   if op.stream == stream and (device is None or op.device == device))

    def scan_category_time(self, category: str) -> float:
        self._require_trace("scan_category_time")
        return sum(op.duration for op in self._live.values() if op.category == category)

    def scan_exposed_copy_time(self) -> float:
        self._require_trace("scan_exposed_copy_time")
        exposed = 0.0
        for device in self.devices():
            prev_end = 0.0
            for op in self.stream_ops(Stream.COMPUTE, device):
                compute_dep_ready = max(
                    (self._live[d].end for d in op.depends_on
                     if self._live[d].stream == Stream.COMPUTE), default=0.0)
                compute_ready = max(prev_end, compute_dep_ready, op.earliest_start)
                exposed += max(0.0, op.start - compute_ready)
                prev_end = op.end
        return exposed

    # ------------------------------------------------------------------
    # Rendering (Figure 9 style traces)
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 80, label_width: int = 28) -> str:
        """Render a compact two-row Gantt chart of the timeline."""
        self._require_trace("render_ascii")
        if not self._live:
            return "(empty timeline)"
        total = self.makespan
        lines = []
        devices = self.devices()
        multi_device = devices != [0]
        lanes: List[Tuple[Stream, int]] = []
        for stream in (Stream.COMPUTE, Stream.COPY):
            lanes.extend((stream, d) for d in devices
                         if d == 0 or self.stream_ops(stream, d))
        for stream in (Stream.STAGE, Stream.INTERCONNECT):
            lanes.extend((stream, d) for d in devices if self.stream_ops(stream, d))
        for stream, device in lanes:
            cells = [" "] * width
            for op in self.stream_ops(stream, device):
                lo = int(op.start / total * (width - 1)) if total else 0
                hi = max(lo + 1, int(op.end / total * (width - 1)) + 1) if total else 1
                symbol = op.name[0].upper() if op.name else "#"
                for i in range(lo, min(hi, width)):
                    cells[i] = symbol
            name = f"{stream.value}[{device}]" if multi_device else stream.value
            label = f"{name:<{label_width}}"[:label_width]
            lines.append(f"{label}|{''.join(cells)}|")
        lines.append(f"{'(makespan)':<{label_width}} {total * 1e3:.3f} ms")
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """Timeline as a list of dictionaries (for CSV emission / reporting)."""
        self._require_trace("to_records")
        return [
            {
                "op_id": op.op_id,
                "name": op.name,
                "stream": op.stream.value,
                "device": op.device,
                "category": op.category,
                "start": op.start,
                "end": op.end,
                "duration": op.duration,
            }
            for op in self._live.values()
        ]
