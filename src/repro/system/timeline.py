"""Multi-stream discrete-event execution timeline.

Models the hardware queues that matter for MoE offloading performance:

* the **compute stream** — GPU kernels execute in issue order;
* the **copy stream** — DRAM→GPU (or SSD→GPU) expert transfers execute in
  issue order, concurrently with the compute stream;
* the **stage stream** — SSD→DRAM staging reads, used when a host-DRAM
  staging cache fronts SSD-resident experts: the SSD read of one expert
  proceeds concurrently with *both* GPU compute and another expert's PCIe
  copy, which is exactly the decoupling a staging buffer buys.

An operation may declare dependencies on other operations (by id); it starts
at the later of (a) the time its stream becomes free and (b) the completion
of all its dependencies.  This is exactly the overlap semantics of CUDA
streams with events, and is what produces Figure 9's execution timelines:
MoE-OnDemand's transfers depend on the same block's gate (serialised),
whereas Pre-gated MoE's transfers depend only on the *previous* block's
pre-gate and therefore overlap with expert execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple


class Stream(Enum):
    """Hardware queue an operation executes on."""

    COMPUTE = "compute"
    COPY = "copy"
    #: Second copy queue: SSD→DRAM staging reads (the coldest hop of a
    #: multi-hop expert fetch), overlapping both compute and PCIe copies.
    STAGE = "stage"
    #: Intra-node GPU↔GPU interconnect (NVLink / PCIe-P2P): all-to-all
    #: token dispatch/combine traffic of expert-parallel replicas.
    INTERCONNECT = "interconnect"


@dataclass
class TimelineOp:
    """One scheduled operation (a kernel or a transfer)."""

    op_id: int
    name: str
    stream: Stream
    duration: float
    depends_on: List[int] = field(default_factory=list)
    category: str = "generic"
    start: float = 0.0
    end: float = 0.0
    #: Wall-clock time before which the op may not start regardless of
    #: stream/dependency readiness (e.g. the arrival time of the request it
    #: belongs to, for open-loop load simulations).
    earliest_start: float = 0.0
    #: GPU the op's queue belongs to.  Each (stream, device) pair is its own
    #: FIFO lane, so device 1's compute proceeds concurrently with device 0's
    #: (expert parallelism); single-GPU timelines leave every op on device 0.
    #: Interconnect ops are replica-wide and always use device 0.
    device: int = 0

    @property
    def scheduled(self) -> bool:
        return self.end > 0.0 or self.duration == 0.0


class ExecutionTimeline:
    """Schedules operations on per-device compute/copy/stage lanes.

    Operations are scheduled eagerly as they are added (each (stream, device)
    lane is FIFO and dependencies must already exist), so querying times is
    O(1) and the object doubles as an execution trace.  A single-GPU replica
    uses only device 0's lanes, which reproduces the original two-stream
    timeline exactly.
    """

    def __init__(self) -> None:
        self._ops: List[TimelineOp] = []
        self._lane_free: Dict[Tuple[Stream, int], float] = {}

    # ------------------------------------------------------------------
    def add(self, name: str, stream: Stream, duration: float,
            depends_on: Optional[Sequence[int]] = None,
            category: str = "generic", earliest_start: float = 0.0,
            device: int = 0) -> TimelineOp:
        """Schedule an operation and return it (with start/end filled in).

        ``earliest_start`` gates the op on wall-clock time in addition to
        lane order and dependencies — used by the request scheduler so no
        work for a request starts before the request has arrived.
        ``device`` selects the GPU whose lane of ``stream`` the op joins.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if earliest_start < 0:
            raise ValueError("earliest_start must be non-negative")
        if device < 0:
            raise ValueError("device must be non-negative")
        deps = list(depends_on or [])
        for dep in deps:
            if not 0 <= dep < len(self._ops):
                raise ValueError(f"dependency {dep} does not reference a scheduled op")
        op = TimelineOp(op_id=len(self._ops), name=name, stream=stream,
                        duration=duration, depends_on=deps, category=category,
                        earliest_start=earliest_start, device=device)
        lane = (stream, device)
        ready = max((self._ops[d].end for d in deps), default=0.0)
        start = max(ready, self._lane_free.get(lane, 0.0), earliest_start)
        op.start = start
        op.end = start + duration
        self._lane_free[lane] = op.end
        self._ops.append(op)
        return op

    def add_compute(self, name: str, duration: float,
                    depends_on: Optional[Sequence[int]] = None,
                    category: str = "compute", earliest_start: float = 0.0,
                    device: int = 0) -> TimelineOp:
        return self.add(name, Stream.COMPUTE, duration, depends_on, category,
                        earliest_start=earliest_start, device=device)

    def add_copy(self, name: str, duration: float,
                 depends_on: Optional[Sequence[int]] = None,
                 category: str = "copy", earliest_start: float = 0.0,
                 device: int = 0) -> TimelineOp:
        return self.add(name, Stream.COPY, duration, depends_on, category,
                        earliest_start=earliest_start, device=device)

    def add_stage(self, name: str, duration: float,
                  depends_on: Optional[Sequence[int]] = None,
                  category: str = "stage_in", earliest_start: float = 0.0,
                  device: int = 0) -> TimelineOp:
        """Schedule an SSD→DRAM staging read on the stage copy stream."""
        return self.add(name, Stream.STAGE, duration, depends_on, category,
                        earliest_start=earliest_start, device=device)

    def add_interconnect(self, name: str, duration: float,
                         depends_on: Optional[Sequence[int]] = None,
                         category: str = "alltoall") -> TimelineOp:
        """Schedule an all-to-all dispatch/combine on the interconnect queue."""
        return self.add(name, Stream.INTERCONNECT, duration, depends_on, category)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def op(self, op_id: int) -> TimelineOp:
        return self._ops[op_id]

    @property
    def ops(self) -> List[TimelineOp]:
        return list(self._ops)

    @property
    def makespan(self) -> float:
        """Completion time of the last operation."""
        return max((op.end for op in self._ops), default=0.0)

    def stream_busy_time(self, stream: Stream, device: Optional[int] = None) -> float:
        return sum(op.duration for op in self._ops
                   if op.stream == stream and (device is None or op.device == device))

    def stream_ops(self, stream: Stream, device: Optional[int] = None) -> List[TimelineOp]:
        return [op for op in self._ops
                if op.stream == stream and (device is None or op.device == device)]

    def devices(self) -> List[int]:
        """Device ids that have scheduled at least one op (sorted)."""
        return sorted({op.device for op in self._ops})

    def device_utilisation(self, device: int) -> float:
        """Fraction of the makespan the device's compute lane was busy."""
        total = self.makespan
        if total <= 0.0:
            return 0.0
        return self.stream_busy_time(Stream.COMPUTE, device) / total

    def category_time(self, category: str) -> float:
        return sum(op.duration for op in self._ops if op.category == category)

    def ops_by_category(self, category: str) -> List[TimelineOp]:
        return [op for op in self._ops if op.category == category]

    def exposed_copy_time(self) -> float:
        """Copy time not hidden under compute: the headline "how much
        migration latency was NOT overlapped" metric of the paper.

        Measured as the sum, over each device's compute-lane ops, of the
        stall each op suffers beyond its compute-side readiness: an op is
        "compute-ready" once the previous op of its lane has retired, its
        compute-stream dependencies have finished and its ``earliest_start``
        (request arrival) has passed.  Any additional wait is, by
        elimination, a stall on a copy/stage/interconnect dependency — i.e.
        exposed transfer time.  Idle gaps caused by compute-side dependencies
        or by waiting for request arrivals are *not* counted.
        """
        exposed = 0.0
        for device in self.devices():
            prev_end = 0.0
            for op in self.stream_ops(Stream.COMPUTE, device):
                compute_dep_ready = max(
                    (self._ops[d].end for d in op.depends_on
                     if self._ops[d].stream == Stream.COMPUTE), default=0.0)
                compute_ready = max(prev_end, compute_dep_ready, op.earliest_start)
                exposed += max(0.0, op.start - compute_ready)
                prev_end = op.end
        return exposed

    def stream_free_time(self, stream: Stream, device: Optional[int] = None) -> float:
        """Time at which ``stream`` becomes free for the next queued op.

        With ``device=None`` this is the latest free time over every device's
        lane of the stream — "when is the whole replica's compute free".
        """
        if device is not None:
            return self._lane_free.get((stream, device), 0.0)
        lanes = [t for (s, _), t in self._lane_free.items() if s == stream]
        return max(lanes, default=0.0)

    def overlap_efficiency(self) -> float:
        """Fraction of copy-stream time hidden under compute (1.0 = fully hidden)."""
        copy_busy = self.stream_busy_time(Stream.COPY)
        if copy_busy == 0.0:
            return 1.0
        exposed = self.exposed_copy_time()
        return max(0.0, 1.0 - exposed / copy_busy)

    # ------------------------------------------------------------------
    # Rendering (Figure 9 style traces)
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 80, label_width: int = 28) -> str:
        """Render a compact two-row Gantt chart of the timeline."""
        if not self._ops:
            return "(empty timeline)"
        total = self.makespan
        lines = []
        devices = self.devices()
        multi_device = devices != [0]
        lanes: List[Tuple[Stream, int]] = []
        for stream in (Stream.COMPUTE, Stream.COPY):
            lanes.extend((stream, d) for d in devices
                         if d == 0 or self.stream_ops(stream, d))
        for stream in (Stream.STAGE, Stream.INTERCONNECT):
            lanes.extend((stream, d) for d in devices if self.stream_ops(stream, d))
        for stream, device in lanes:
            cells = [" "] * width
            for op in self.stream_ops(stream, device):
                lo = int(op.start / total * (width - 1)) if total else 0
                hi = max(lo + 1, int(op.end / total * (width - 1)) + 1) if total else 1
                symbol = op.name[0].upper() if op.name else "#"
                for i in range(lo, min(hi, width)):
                    cells[i] = symbol
            name = f"{stream.value}[{device}]" if multi_device else stream.value
            label = f"{name:<{label_width}}"[:label_width]
            lines.append(f"{label}|{''.join(cells)}|")
        lines.append(f"{'(makespan)':<{label_width}} {total * 1e3:.3f} ms")
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """Timeline as a list of dictionaries (for CSV emission / reporting)."""
        return [
            {
                "op_id": op.op_id,
                "name": op.name,
                "stream": op.stream.value,
                "device": op.device,
                "category": op.category,
                "start": op.start,
                "end": op.end,
                "duration": op.duration,
            }
            for op in self._ops
        ]
