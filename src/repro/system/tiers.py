"""Tiered memory hierarchy: multi-hop transfer paths between memory tiers.

The serving stack moves expert parameters up a three-tier hierarchy —
``ssd`` ← ``dram`` ← ``hbm`` (Figure 4; the SSD tier appears in the
Figure 16 study).  Before this module the offload model was two-point: a
single :class:`~repro.system.hardware.LinkSpec` whose bandwidth was the min
of the links on the way and whose latency was their sum.  That collapses the
structure a staging cache needs: with expert parameters on SSD, the
SSD→DRAM read and the DRAM→GPU PCIe copy are *different* hardware queues,
and a host-DRAM staging buffer lets the two be decoupled (and the SSD read
skipped entirely when the expert is already staged).

:class:`TierPath` is the explicit form of that route: an ordered list of
:class:`TransferHop`\\ s from a source tier up to GPU HBM.  A transfer along
the path is *chunked*: the first chunk incurs every hop's fixed latency, and
steady state streams at the bottleneck (slowest link) bandwidth — the
cut-through pipelining a real multi-hop DMA path exhibits.  The closed form

    ``transfer_time(B) = sum(hop latencies) + B / min(hop bandwidths)``

therefore reproduces, exactly, the legacy single-link model built with
min-bandwidth/summed-latency — the 1e-9 parity contract the tier refactor
keeps with every existing timing test.

The module also defines the bookkeeping types the serving layers share:

* :class:`HopBreakdown` — per-hop bytes/latency attribution of one transfer
  (what :meth:`repro.core.migration.ExpertTransfer.hop_breakdown` returns);
* :class:`FetchRoute` — the scheduling decision for one expert fetch (which
  tier the bytes came from, whether the DRAM stage was hit, and the op
  durations for the stage and copy streams);
* :class:`TierTransferStats` — per-tier bytes-moved and stage hit/miss
  counters, merged across replicas for cluster-level reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Dict, List, Tuple

from .hardware import LinkSpec

#: Canonical tier names, coldest first.  ``hbm`` is always the destination.
TIER_NAMES = ("ssd", "dram", "hbm")


def merged_source_tier(a: str, b: str) -> str:
    """Source-tier label of pooled stats: kept when equal, else ``"mixed"``."""
    return a if a == b else "mixed"


def merge_optional_stats(stats):
    """Fold ``.merged_with`` over entries, tolerating ``None`` entries.

    The shared merge shape of every per-replica stats ledger
    (:class:`TierTransferStats`,
    :class:`~repro.system.residency.ResidencyStats`): replicas without a
    ledger contribute nothing, and the result is ``None`` only when *no*
    replica had one.
    """
    merged = None
    for entry in stats:
        if entry is None:
            continue
        merged = entry if merged is None else merged.merged_with(entry)
    return merged


@dataclass(frozen=True)
class TransferHop:
    """One link crossing of a multi-hop transfer (e.g. ``ssd`` → ``dram``)."""

    source: str
    dest: str
    link: LinkSpec

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds for this hop alone, serialised (no pipelining)."""
        return self.link.transfer_time(num_bytes)


@dataclass(frozen=True)
class HopBreakdown:
    """Per-hop attribution of one transfer's bytes and time."""

    source: str
    dest: str
    link_name: str
    bytes: int
    latency: float        # the hop's fixed latency contribution
    serial_time: float    # time this hop alone would take, unpipelined


@dataclass(frozen=True)
class TierPath:
    """An ordered route from a source tier up to GPU HBM.

    ``hops`` are listed in traversal order (coldest link first), e.g. for an
    SSD-resident expert: ``[ssd→dram, dram→hbm]``.  Transfers along the path
    are chunked, so the slower link sets steady-state throughput and every
    hop's fixed latency is paid once (by the first chunk).
    """

    source: str
    hops: Tuple[TransferHop, ...]
    dest: str = "hbm"

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("a TierPath needs at least one hop")
        if self.hops[0].source != self.source:
            raise ValueError(
                f"first hop starts at {self.hops[0].source!r}, not {self.source!r}")
        if self.hops[-1].dest != self.dest:
            raise ValueError(
                f"last hop ends at {self.hops[-1].dest!r}, not {self.dest!r}")
        for earlier, later in zip(self.hops, self.hops[1:]):
            if earlier.dest != later.source:
                raise ValueError(
                    f"hop {earlier.source}→{earlier.dest} does not connect to "
                    f"hop {later.source}→{later.dest}")

    # ------------------------------------------------------------------
    @property
    def num_hops(self) -> int:
        return len(self.hops)

    @cached_property
    def bottleneck_bandwidth(self) -> float:
        """Steady-state throughput of the pipelined path (slowest link).

        Cached: the hop tuple of a (frozen) path never changes, and the
        serving hot loop evaluates transfer times per expert fetch.
        """
        return min(hop.link.bandwidth for hop in self.hops)

    @cached_property
    def total_latency(self) -> float:
        """Fixed latency of the full path (each hop's, paid by the first chunk)."""
        return sum(hop.link.latency for hop in self.hops)

    def as_link(self) -> LinkSpec:
        """The legacy single-link collapse of this path (min bw, summed lat)."""
        names = "+".join(hop.link.name for hop in self.hops)
        return LinkSpec(name=f"{self.source}-to-{self.dest} ({names})",
                        bandwidth=self.bottleneck_bandwidth,
                        latency=self.total_latency)

    # ------------------------------------------------------------------
    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` along the whole path, pipelined.

        Chunked cut-through: hop latencies sum (first chunk), the slower
        link's bandwidth bounds steady state.  Identical to the legacy
        min-bandwidth/summed-latency single-link model.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.total_latency + num_bytes / self.bottleneck_bandwidth

    def first_hop_time(self, num_bytes: float) -> float:
        """Serialised time of the first (coldest) hop alone — the stage-in op."""
        return self.hops[0].transfer_time(num_bytes)

    def cut_through_tail(self, num_bytes: float) -> float:
        """Pipelined time remaining after the first hop has fully landed.

        When a transfer is split into a stage-in op (first hop) and a
        dependent up-path op, the dependent op's duration is the path's
        pipelined total minus the first hop's serial time: the last chunk
        only has the remaining hops' latency (plus any bandwidth deficit of
        the upper links) left to cover.  Always positive for a multi-hop
        path; zero bytes cost zero.
        """
        if num_bytes == 0:
            return 0.0
        return self.transfer_time(num_bytes) - self.first_hop_time(num_bytes)

    def breakdown(self, num_bytes: int) -> List[HopBreakdown]:
        """Per-hop byte/latency attribution of one ``num_bytes`` transfer."""
        return [
            HopBreakdown(source=hop.source, dest=hop.dest,
                         link_name=hop.link.name, bytes=int(num_bytes),
                         latency=hop.link.latency,
                         serial_time=hop.transfer_time(num_bytes))
            for hop in self.hops
        ]


@dataclass(frozen=True)
class FetchRoute:
    """The scheduling decision for one expert fetch.

    Produced by :meth:`repro.serving.placement.ModelPlacement.route_fetch`
    and consumed by the per-iteration simulator:

    * ``stage_duration > 0`` — schedule a stage-in op (the SSD→DRAM read) on
      the stage copy stream; the GPU copy op depends on it.
    * ``copy_duration`` — the GPU-visible copy op on the main copy stream.

    ``stage_hit`` is ``None`` when no DRAM stage is configured; otherwise it
    records whether the expert was already staged (SSD read skipped).
    ``device`` is the GPU whose copy lane the fetch occupies — the shard
    owning the expert in an expert-parallel replica (0 for single-GPU).
    """

    source_tier: str
    copy_duration: float
    stage_duration: float = 0.0
    stage_hit: "bool | None" = None
    device: int = 0


@dataclass
class TierTransferStats:
    """Per-tier transfer volume and DRAM-stage hit counters.

    ``pcie_bytes`` counts every byte that crossed the DRAM→GPU link (all
    expert fetches end with that hop); ``ssd_bytes_read`` counts bytes read
    off the SSD (the coldest hop — a warm DRAM stage strictly reduces it);
    ``ssd_bytes_saved`` is the SSD read volume avoided by stage hits.
    """

    fetches: int = 0
    pcie_bytes: int = 0
    ssd_bytes_read: int = 0
    ssd_bytes_saved: int = 0
    stage_hits: int = 0
    stage_misses: int = 0
    source_tier: str = "dram"

    @property
    def stage_accesses(self) -> int:
        return self.stage_hits + self.stage_misses

    @property
    def stage_hit_rate(self) -> float:
        accesses = self.stage_accesses
        return self.stage_hits / accesses if accesses else 0.0

    def record_fetch(self, route: FetchRoute, num_bytes: int) -> None:
        """Account one issued expert fetch described by ``route``."""
        self.fetches += 1
        self.pcie_bytes += int(num_bytes)
        if route.source_tier == "ssd":
            if route.stage_hit:
                self.stage_hits += 1
                self.ssd_bytes_saved += int(num_bytes)
            else:
                self.ssd_bytes_read += int(num_bytes)
                if route.stage_hit is not None:
                    self.stage_misses += 1

    # -- round-replay protocol ------------------------------------------
    #: Number of integer counters :meth:`replay_counters` exposes.
    REPLAY_WIDTH = 6

    def replay_counters(self) -> tuple:
        """Flat integer counters round replay extrapolates as ``n * delta``."""
        return (self.fetches, self.pcie_bytes, self.ssd_bytes_read,
                self.ssd_bytes_saved, self.stage_hits, self.stage_misses)

    def replay_fast_forward(self, num_rounds: int, delta: tuple) -> None:
        """Advance by ``num_rounds`` rounds of a verified per-round delta."""
        fetches, pcie, ssd_read, ssd_saved, hits, misses = delta
        self.fetches += num_rounds * fetches
        self.pcie_bytes += num_rounds * pcie
        self.ssd_bytes_read += num_rounds * ssd_read
        self.ssd_bytes_saved += num_rounds * ssd_saved
        self.stage_hits += num_rounds * hits
        self.stage_misses += num_rounds * misses

    def snapshot(self) -> "TierTransferStats":
        return replace(self)

    def since(self, earlier: "TierTransferStats") -> "TierTransferStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return TierTransferStats(
            fetches=self.fetches - earlier.fetches,
            pcie_bytes=self.pcie_bytes - earlier.pcie_bytes,
            ssd_bytes_read=self.ssd_bytes_read - earlier.ssd_bytes_read,
            ssd_bytes_saved=self.ssd_bytes_saved - earlier.ssd_bytes_saved,
            stage_hits=self.stage_hits - earlier.stage_hits,
            stage_misses=self.stage_misses - earlier.stage_misses,
            source_tier=self.source_tier)

    def merged_with(self, other: "TierTransferStats") -> "TierTransferStats":
        """Pooled counters across replicas."""
        tier = merged_source_tier(self.source_tier, other.source_tier)
        return TierTransferStats(
            fetches=self.fetches + other.fetches,
            pcie_bytes=self.pcie_bytes + other.pcie_bytes,
            ssd_bytes_read=self.ssd_bytes_read + other.ssd_bytes_read,
            ssd_bytes_saved=self.ssd_bytes_saved + other.ssd_bytes_saved,
            stage_hits=self.stage_hits + other.stage_hits,
            stage_misses=self.stage_misses + other.stage_misses,
            source_tier=tier)

    def as_dict(self) -> Dict[str, object]:
        return {
            "fetches": self.fetches,
            "pcie_bytes": self.pcie_bytes,
            "ssd_bytes_read": self.ssd_bytes_read,
            "ssd_bytes_saved": self.ssd_bytes_saved,
            "stage_hits": self.stage_hits,
            "stage_misses": self.stage_misses,
            "stage_hit_rate": self.stage_hit_rate,
            "source_tier": self.source_tier,
        }


def merge_tier_stats(stats: "List[TierTransferStats | None]") -> "TierTransferStats | None":
    """Merge per-replica tier stats, tolerating replicas without any.

    Mirrors the ``cache_stats`` merging guard: replicas that never offloaded
    (``gpu_only``, or mixed fleets) contribute nothing rather than breaking
    the merge; the result is ``None`` only when *no* replica had stats.
    """
    return merge_optional_stats(stats)
