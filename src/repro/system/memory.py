"""Memory pools with allocation tracking, peak accounting and OOM detection.

Used by the serving engines to track GPU HBM usage (parameters, activated
experts, activations) and to reproduce the GPU-only out-of-memory result for
Switch-Large on an 80 GB A100 (Figures 10-12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation would exceed a pool's capacity."""

    def __init__(self, pool: "MemoryPool", requested: int) -> None:
        self.pool_name = pool.name
        self.tier = pool.tier
        self.requested = requested
        self.in_use = pool.in_use
        self.capacity = pool.capacity
        tier = f" [{pool.tier} tier]" if pool.tier else ""
        super().__init__(
            f"{pool.name}{tier}: out of memory — requested {requested / 1e9:.2f} GB with "
            f"{pool.in_use / 1e9:.2f} GB already in use of {pool.capacity / 1e9:.2f} GB"
        )


@dataclass
class Allocation:
    """A live allocation inside a :class:`MemoryPool`."""

    tag: str
    num_bytes: int
    category: str = "generic"


class MemoryPool:
    """A fixed-capacity memory pool (GPU HBM, host DRAM, or SSD).

    Allocations are tagged so the engines can free them selectively (e.g.
    free the experts of block *N* once block *N+1* is done with the GPU) and
    categorised so peak usage can be broken down in reports.
    """

    def __init__(self, name: str, capacity: int, tier: str = "") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        #: Memory-tier name ("hbm"/"dram"/"ssd") when the pool belongs to a
        #: :class:`TieredMemory`; surfaces in :class:`OutOfMemoryError`.
        self.tier = tier
        self.capacity = int(capacity)
        self._allocations: Dict[str, Allocation] = {}
        self._in_use = 0
        self._peak = 0
        self._category_peaks: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def peak(self) -> int:
        return self._peak

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._in_use

    def utilisation(self) -> float:
        return self._in_use / self.capacity

    def peak_utilisation(self) -> float:
        return self._peak / self.capacity

    # ------------------------------------------------------------------
    def allocate(self, tag: str, num_bytes: int, category: str = "generic",
                 allow_oversubscribe: bool = False) -> Allocation:
        """Reserve ``num_bytes`` under ``tag``.

        Raises :class:`OutOfMemoryError` when the pool would be exceeded,
        unless ``allow_oversubscribe`` is set (used by analyses that want to
        *measure* how far over capacity a design would go).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if tag in self._allocations:
            raise ValueError(f"allocation tag {tag!r} already exists in pool {self.name!r}")
        if not allow_oversubscribe and self._in_use + num_bytes > self.capacity:
            raise OutOfMemoryError(self, num_bytes)
        alloc = Allocation(tag=tag, num_bytes=int(num_bytes), category=category)
        self._allocations[tag] = alloc
        self._in_use += alloc.num_bytes
        self._peak = max(self._peak, self._in_use)
        cat_usage = self.category_usage(category)
        self._category_peaks[category] = max(self._category_peaks.get(category, 0), cat_usage)
        return alloc

    def free(self, tag: str) -> None:
        """Release the allocation registered under ``tag``."""
        alloc = self._allocations.pop(tag, None)
        if alloc is None:
            raise KeyError(f"no allocation named {tag!r} in pool {self.name!r}")
        self._in_use -= alloc.num_bytes

    def free_category(self, category: str) -> int:
        """Release every allocation in ``category``; returns bytes freed."""
        tags = [t for t, a in self._allocations.items() if a.category == category]
        freed = 0
        for tag in tags:
            freed += self._allocations[tag].num_bytes
            self.free(tag)
        return freed

    def has(self, tag: str) -> bool:
        return tag in self._allocations

    def category_usage(self, category: str) -> int:
        return sum(a.num_bytes for a in self._allocations.values() if a.category == category)

    def category_peak(self, category: str) -> int:
        return self._category_peaks.get(category, 0)

    def allocations(self) -> Iterator[Allocation]:
        return iter(list(self._allocations.values()))

    def reset_peak(self) -> None:
        self._peak = self._in_use
        self._category_peaks = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MemoryPool({self.name!r}, in_use={self._in_use / 1e9:.2f} GB, "
                f"peak={self._peak / 1e9:.2f} GB, capacity={self.capacity / 1e9:.2f} GB)")


@dataclass
class TieredMemory:
    """The three-tier memory hierarchy of the serving system (Figure 4).

    Pools are addressed uniformly by tier name through :meth:`pool`
    (``"hbm"`` / ``"dram"`` / ``"ssd"``); the ``gpu``/``cpu``/``ssd``
    attributes remain for construction and direct access.
    """

    gpu: MemoryPool
    cpu: MemoryPool
    ssd: Optional[MemoryPool] = None

    @classmethod
    def from_system(cls, system) -> "TieredMemory":
        """Build pools from a :class:`~repro.system.hardware.SystemSpec`."""
        gpu = MemoryPool(f"GPU ({system.gpu.name})", system.gpu.memory_bytes,
                         tier="hbm")
        cpu = MemoryPool(f"CPU DRAM ({system.host.name})", system.host.dram_bytes,
                         tier="dram")
        ssd = MemoryPool(f"SSD ({system.ssd.name})", system.ssd.capacity_bytes,
                         tier="ssd")
        return cls(gpu=gpu, cpu=cpu, ssd=ssd)

    def available_tiers(self) -> list:
        """Tier names this hierarchy can address, coldest last."""
        tiers = ["hbm", "dram"]
        if self.ssd is not None:
            tiers.append("ssd")
        return tiers

    def pool(self, tier: str) -> MemoryPool:
        """The pool backing ``tier`` (``"hbm"`` / ``"dram"`` / ``"ssd"``)."""
        pools = {"hbm": self.gpu, "dram": self.cpu, "ssd": self.ssd}
        selected = pools.get(tier)
        if selected is None:
            raise ValueError(
                f"unknown memory tier {tier!r}; available tiers: "
                f"{self.available_tiers()}")
        return selected

    def offload_pool(self, tier: str) -> MemoryPool:
        """Deprecated spelling of :meth:`pool` for the offload tiers."""
        if tier not in ("dram", "ssd"):
            raise ValueError(
                f"unknown offload tier {tier!r}; available tiers: "
                f"{[t for t in self.available_tiers() if t != 'hbm']}")
        return self.pool(tier)


#: Backwards-compatible alias — the hierarchy predates the tier-path refactor.
MemoryHierarchy = TieredMemory
