"""Hardware and memory-system simulator.

The substrate that stands in for the paper's A100 + EPYC + PCIe testbed:
hardware specifications, a GPU latency model, memory pools with peak
tracking, the dual-stream execution timeline that models compute/transfer
overlap, the expert caches used in the Figure 15 study, and the tiered
memory hierarchy (multi-hop transfer paths, per-tier transfer stats) behind
the SSD-offloading study of Figure 16.
"""

from .cache import (
    CacheStats,
    ExpertCache,
    LFUPolicy,
    LIFOPolicy,
    LRUPolicy,
    cache_capacity_from_fraction,
    make_policy,
)
from .hardware import (
    A100_40GB,
    A100_80GB,
    EPYC_7V12,
    NVLINK3,
    NVME_SSD,
    PAPER_SYSTEM,
    PCIE_GEN4,
    PCIE_P2P,
    SSD_SYSTEM,
    DeviceTopology,
    GpuSpec,
    HostSpec,
    LinkSpec,
    SsdSpec,
    SystemSpec,
    get_system,
)
from .memory import Allocation, MemoryHierarchy, MemoryPool, OutOfMemoryError, TieredMemory
from .performance import GpuLatencyModel, LayerCost
from .residency import ExpertResidency, ResidencyStats
from .tiers import (
    FetchRoute,
    HopBreakdown,
    TierPath,
    TierTransferStats,
    TransferHop,
    merge_tier_stats,
)
from .timeline import ExecutionTimeline, Stream, TimelineOp

__all__ = [
    "CacheStats",
    "ExpertCache",
    "LFUPolicy",
    "LIFOPolicy",
    "LRUPolicy",
    "cache_capacity_from_fraction",
    "make_policy",
    "A100_40GB",
    "A100_80GB",
    "EPYC_7V12",
    "NVLINK3",
    "NVME_SSD",
    "PAPER_SYSTEM",
    "PCIE_GEN4",
    "PCIE_P2P",
    "SSD_SYSTEM",
    "DeviceTopology",
    "GpuSpec",
    "HostSpec",
    "LinkSpec",
    "SsdSpec",
    "SystemSpec",
    "get_system",
    "Allocation",
    "MemoryHierarchy",
    "TieredMemory",
    "MemoryPool",
    "OutOfMemoryError",
    "ExpertResidency",
    "ResidencyStats",
    "FetchRoute",
    "HopBreakdown",
    "TierPath",
    "TierTransferStats",
    "TransferHop",
    "merge_tier_stats",
    "GpuLatencyModel",
    "LayerCost",
    "ExecutionTimeline",
    "Stream",
    "TimelineOp",
]
