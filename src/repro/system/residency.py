"""Shared expert-residency map: refcounted, tier-aware GPU caching.

The Figure 15 study caches hot experts in GPU memory for the one-request
engine; continuous batching needs more than a per-request cache, because
concurrent in-flight requests *share* residency: an expert fetched for one
request must stay in HBM until every request computing with it has executed,
and only then may a replacement policy decide whether to keep it warm for
future rounds or give the bytes back.

:class:`ExpertResidency` is that shared map.  It is keyed by
``(global_moe_block_index, expert_id)`` like :class:`~repro.system.cache.ExpertCache`
and reuses the same LIFO/LRU/LFU :class:`~repro.system.cache.EvictionPolicy`
implementations, but adds the two properties a multi-request scheduler
needs:

* **refcounted pinning** — :meth:`pin` marks an expert in use by one
  in-flight round member; a pinned entry can never be evicted, so a round's
  working set is stable from planning through execution;
* **byte accounting** — every resident expert holds a tagged allocation in
  the owning :class:`~repro.system.memory.MemoryPool` (GPU HBM), so
  residency can never silently exceed the device capacity: a miss first
  evicts unpinned entries (policy order) to make room, and still raises
  :class:`~repro.system.memory.OutOfMemoryError` if the pinned working set
  alone does not fit.

``capacity_experts`` bounds the number of *retained* (unpinned, kept-warm)
entries — the cache size of the Figure 15 sweep.  With capacity 0 nothing
outlives its pins: every expert is freed the moment its last user releases
it, which reproduces the uncached scheduler byte-for-byte (the parity
contract the tests pin down).

The map is *tier-aware* in that it records which offload tier
(``dram``/``ssd``) backs the misses it charges, so reports can attribute
saved bytes to the link they would have crossed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from .cache import EvictionPolicy, ExpertKey, make_policy
from .memory import MemoryPool
from .tiers import merged_source_tier


@dataclass
class ResidencyStats:
    """Counters for one residency map (cumulative since construction).

    ``hits``/``misses`` count *unique expert uses*: one per expert per
    scheduling round (intra-round sharing between requests is free with or
    without a cache, so it is deliberately not counted as a hit).
    ``bytes_saved`` is the transfer volume avoided by hits — what an
    uncached scheduler would have migrated over the offload link.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_transferred: int = 0
    bytes_saved: int = 0
    peak_resident_experts: int = 0
    source_tier: str = "dram"

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "ResidencyStats":
        return replace(self)

    def since(self, earlier: "ResidencyStats") -> "ResidencyStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return ResidencyStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            bytes_transferred=self.bytes_transferred - earlier.bytes_transferred,
            bytes_saved=self.bytes_saved - earlier.bytes_saved,
            peak_resident_experts=self.peak_resident_experts,
            source_tier=self.source_tier)

    def merged_with(self, other: "ResidencyStats") -> "ResidencyStats":
        """Pooled counters across replicas (peaks are per-GPU, so take max)."""
        tier = merged_source_tier(self.source_tier, other.source_tier)
        return ResidencyStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            bytes_transferred=self.bytes_transferred + other.bytes_transferred,
            bytes_saved=self.bytes_saved + other.bytes_saved,
            peak_resident_experts=max(self.peak_resident_experts,
                                      other.peak_resident_experts),
            source_tier=tier)

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits, "misses": self.misses,
            "hit_rate": self.hit_rate, "evictions": self.evictions,
            "bytes_transferred": self.bytes_transferred,
            "bytes_saved": self.bytes_saved,
            "peak_resident_experts": self.peak_resident_experts,
            "source_tier": self.source_tier,
        }


@dataclass
class _ResidentEntry:
    """One expert currently holding GPU bytes."""

    key: ExpertKey
    tag: str
    pins: int = 0


class ExpertResidency:
    """Refcounted residency map over one GPU memory pool.

    Parameters
    ----------
    pool:
        The GPU :class:`~repro.system.memory.MemoryPool` residency charges
        its bytes to (the placement's HBM pool).
    expert_bytes:
        Size of one expert's parameters.
    capacity_experts:
        Maximum number of retained (unpinned) entries kept warm between
        rounds; 0 retains nothing (pure refcounted sharing).
    policy:
        Replacement policy name or instance (``lifo`` / ``lru`` / ``lfu``).
    source_tier:
        Offload tier the misses are fetched from (reporting only).
    allow_oversubscription:
        Mirror of the engine knob: let the pool exceed capacity instead of
        raising, for analyses that measure the overshoot.
    tag_prefix / category:
        Allocation naming in the pool; the DRAM staging cache uses
        ``staged_expert`` / ``staged_experts`` so its bytes stay separately
        attributable from GPU-resident experts in peak breakdowns.
    """

    def __init__(self, pool: MemoryPool, expert_bytes: int,
                 capacity_experts: int = 0,
                 policy: "str | EvictionPolicy" = "lru",
                 source_tier: str = "dram",
                 allow_oversubscription: bool = False,
                 tag_prefix: str = "resident_expert",
                 category: str = "experts") -> None:
        if expert_bytes <= 0:
            raise ValueError("expert_bytes must be positive")
        if capacity_experts < 0:
            raise ValueError("capacity_experts must be non-negative")
        self.pool = pool
        self.expert_bytes = int(expert_bytes)
        self.capacity = int(capacity_experts)
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.allow_oversubscription = allow_oversubscription
        self.tag_prefix = tag_prefix
        self.category = category
        self.stats = ResidencyStats(source_tier=source_tier)
        self._entries: Dict[ExpertKey, _ResidentEntry] = {}
        self._seq = 0
        #: Bumped on every insert and drop — round replay uses it to
        #: invalidate signature memos that folded in residency outcomes.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ExpertKey) -> bool:
        return key in self._entries

    def is_resident(self, key: ExpertKey) -> bool:
        return key in self._entries

    def pins(self, key: ExpertKey) -> int:
        entry = self._entries.get(key)
        return entry.pins if entry is not None else 0

    def resident_keys(self) -> List[ExpertKey]:
        return list(self._entries.keys())

    def resident_for_block(self, block_index: int) -> List[int]:
        """Expert ids of ``block_index`` currently resident (pinned or retained)."""
        return [e for (b, e) in self._entries if b == block_index]

    @property
    def retained_count(self) -> int:
        """Number of unpinned entries kept warm (bounded by ``capacity``)."""
        return sum(1 for entry in self._entries.values() if entry.pins == 0)

    @property
    def pinned_count(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.pins > 0)

    @property
    def resident_bytes(self) -> int:
        return len(self._entries) * self.expert_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def pin(self, key: ExpertKey) -> bool:
        """Pin ``key`` for one user; returns whether it was already resident.

        A ``True`` return is a hit: the expert's bytes are already on the
        GPU and no transfer is needed.  ``False`` is a miss: the bytes were
        reserved in the pool (evicting unpinned entries if the pool needed
        room) and the caller must issue the CPU→GPU migration.
        """
        entry = self._entries.get(key)
        if entry is not None:
            entry.pins += 1
            self.policy.on_access(key)
            self.stats.hits += 1
            self.stats.bytes_saved += self.expert_bytes
            return True
        self._make_room()
        self._seq += 1
        self.epoch += 1
        tag = f"{self.tag_prefix}:{key[0]}:{key[1]}:{self._seq}"
        self.pool.allocate(tag, self.expert_bytes, category=self.category,
                           allow_oversubscribe=self.allow_oversubscription)
        self._entries[key] = _ResidentEntry(key=key, tag=tag, pins=1)
        self.policy.on_insert(key)
        self.stats.misses += 1
        self.stats.bytes_transferred += self.expert_bytes
        self.stats.peak_resident_experts = max(self.stats.peak_resident_experts,
                                               len(self._entries))
        return False

    def release(self, key: ExpertKey) -> None:
        """Drop one pin; at refcount zero the entry is retained or freed.

        Retention is capacity-bounded: if keeping this entry would put the
        number of unpinned entries over ``capacity_experts``, the policy
        chooses a victim among the unpinned entries (possibly this one).
        With capacity 0 the entry is freed immediately.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"expert {key!r} is not resident")
        if entry.pins <= 0:
            raise ValueError(f"expert {key!r} is not pinned")
        entry.pins -= 1
        if entry.pins > 0:
            return
        if self.capacity <= 0:
            self._drop(key, count_eviction=False)
            return
        while self.retained_count > self.capacity:
            if not self._evict_one():  # pragma: no cover - defensive
                break

    def evict_unpinned(self) -> int:
        """Drop every retained entry (cold-start a warm cache); returns count."""
        dropped = 0
        while self._evict_one():
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Round-replay protocol
    # ------------------------------------------------------------------
    # Steady-state round replay (serving/scheduler.py) fast-forwards windows
    # of structurally identical decode rounds without executing them.  With
    # a residency map in play that is only exact when the map's *future
    # behaviour* is unaffected by the skip: the resident set and pin counts
    # must be a per-round fixed point, and the eviction policy's state must
    # advance by an identical, replayable delta each round (zero for
    # LIFO/LRU order, a constant per-key count bump for LFU).  The integer
    # stats counters then extrapolate as exact ``n * delta`` sums.

    def replay_state(self) -> tuple:
        """Snapshot of everything that decides this map's future behaviour."""
        return (tuple(sorted((key, entry.pins)
                             for key, entry in self._entries.items())),
                self.policy.replay_state(),
                self.stats.peak_resident_experts)

    def replay_window_delta(self, states: List[tuple]) -> "tuple | None":
        """Verify a window of per-round snapshots is exactly replayable.

        Returns the (possibly empty) per-round policy delta to pass to
        :meth:`replay_fast_forward`, or ``None`` when the window must stand
        down: resident set / pins / peak drifting, or a policy state change
        that is not the same replayable delta every round.
        """
        first = states[0]
        for state in states[1:]:
            if state[0] != first[0] or state[2] != first[2]:
                return None
        deltas = [self.policy.replay_delta(a[1], b[1])
                  for a, b in zip(states, states[1:])]
        if deltas[0] is None or any(d != deltas[0] for d in deltas[1:]):
            return None
        return deltas[0]

    def replay_stats_counters(self) -> tuple:
        """Integer stat counters replay bumps by exact per-round deltas."""
        s = self.stats
        return (s.hits, s.misses, s.evictions, s.bytes_transferred,
                s.bytes_saved)

    def replay_fast_forward(self, num_rounds: int, stats_delta: tuple,
                            policy_delta: tuple) -> None:
        """Advance stats and policy state by ``num_rounds`` verified rounds."""
        hits, misses, evictions, transferred, saved = stats_delta
        s = self.stats
        s.hits += num_rounds * hits
        s.misses += num_rounds * misses
        s.evictions += num_rounds * evictions
        s.bytes_transferred += num_rounds * transferred
        s.bytes_saved += num_rounds * saved
        self.policy.replay_fast_forward(num_rounds, policy_delta)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evictable(self) -> List[ExpertKey]:
        return [k for k, entry in self._entries.items() if entry.pins == 0]

    def _evict_one(self) -> bool:
        candidates = self._evictable()
        if not candidates:
            return False
        victim = self.policy.choose_victim(candidates)
        self._drop(victim, count_eviction=True)
        return True

    def _drop(self, key: ExpertKey, count_eviction: bool) -> None:
        entry = self._entries.pop(key)
        self.epoch += 1
        self.policy.on_evict(key)
        if self.pool.has(entry.tag):
            self.pool.free(entry.tag)
        if count_eviction:
            self.stats.evictions += 1

    def _make_room(self) -> None:
        """Evict unpinned entries until the pool can take one more expert."""
        if self.allow_oversubscription:
            return
        while self.pool.free_bytes < self.expert_bytes:
            if not self._evict_one():
                return  # pinned working set fills the pool: allocate() raises
