"""Expert caching in GPU memory (Section VI-D, Figure 15).

Prior work (Huang et al.) observed that a few "hot" experts dominate
activations and proposed buffering them in GPU memory.  The paper evaluates
LIFO (the policy proposed there), LFU (SE-MoE) and LRU replacement on top of
both Pre-gated MoE and MoE-OnDemand.  This module implements all three
policies behind a common :class:`ExpertCache` interface keyed by
``(moe_block_index, expert_id)`` — each MoE block has its own experts, so
cache entries are per-block.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

ExpertKey = Tuple[int, int]  # (moe_block_index, expert_id)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class EvictionPolicy:
    """Interface for cache replacement policies."""

    name = "base"

    def on_insert(self, key: ExpertKey) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def on_access(self, key: ExpertKey) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def on_evict(self, key: ExpertKey) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def choose_victim(self, keys: List[ExpertKey]) -> ExpertKey:  # pragma: no cover
        raise NotImplementedError

    # -- round-replay protocol ------------------------------------------
    # Steady-state round replay skips scheduling rounds analytically, so a
    # policy must be able to (1) snapshot the state that decides future
    # evictions, (2) certify that one skipped round would change that state
    # in a way that is exactly repeatable, and (3) apply n rounds' worth of
    # that change in one step.  Order-based policies (LIFO/LRU) only qualify
    # when the per-round state change is a fixed point (no change at all);
    # count-based policies (LFU) additionally qualify when every key's count
    # grows by the same amount each round (the n*delta fast-forward).

    def replay_state(self) -> Tuple:
        """Hashable snapshot of the eviction-deciding state."""
        return ()

    def replay_delta(self, prev: Tuple, cur: Tuple) -> Optional[Tuple]:
        """Per-round state change between two snapshots; ``None`` if a
        window of such rounds cannot be fast-forwarded exactly."""
        return () if prev == cur else None

    def replay_fast_forward(self, num_rounds: int, delta: Tuple) -> None:
        """Apply ``num_rounds`` rounds' worth of a verified ``delta``."""


class LIFOPolicy(EvictionPolicy):
    """Last-in-first-out replacement (the expert-buffering proposal of [14])."""

    name = "lifo"

    def __init__(self) -> None:
        self._stack: List[ExpertKey] = []

    def on_insert(self, key: ExpertKey) -> None:
        self._stack.append(key)

    def on_access(self, key: ExpertKey) -> None:
        pass  # insertion order alone decides eviction

    def on_evict(self, key: ExpertKey) -> None:
        if key in self._stack:
            self._stack.remove(key)

    def choose_victim(self, keys: List[ExpertKey]) -> ExpertKey:
        for key in reversed(self._stack):
            if key in keys:
                return key
        return keys[-1]

    def replay_state(self) -> Tuple:
        return tuple(self._stack)


class LRUPolicy(EvictionPolicy):
    """Least-recently-used replacement."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[ExpertKey, None]" = OrderedDict()

    def on_insert(self, key: ExpertKey) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: ExpertKey) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_evict(self, key: ExpertKey) -> None:
        self._order.pop(key, None)

    def choose_victim(self, keys: List[ExpertKey]) -> ExpertKey:
        for key in self._order:
            if key in keys:
                return key
        return keys[0]

    def replay_state(self) -> Tuple:
        return tuple(self._order)


class LFUPolicy(EvictionPolicy):
    """Least-frequently-used replacement (SE-MoE's expert buffer)."""

    name = "lfu"

    def __init__(self) -> None:
        self._counts: Dict[ExpertKey, int] = {}

    def on_insert(self, key: ExpertKey) -> None:
        self._counts.setdefault(key, 0)

    def on_access(self, key: ExpertKey) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1

    def on_evict(self, key: ExpertKey) -> None:
        self._counts.pop(key, None)

    def choose_victim(self, keys: List[ExpertKey]) -> ExpertKey:
        return min(keys, key=lambda k: self._counts.get(k, 0))

    def replay_state(self) -> Tuple:
        return tuple(sorted(self._counts.items()))

    def replay_delta(self, prev: Tuple, cur: Tuple) -> Optional[Tuple]:
        # Access counts grow monotonically, so a fixed point is the rare
        # case — but a steady round bumps every key by a constant amount,
        # which extrapolates exactly as long as the key set is stable.
        if tuple(k for k, _ in prev) != tuple(k for k, _ in cur):
            return None
        return tuple((key, after - before)
                     for (key, before), (_, after) in zip(prev, cur))

    def replay_fast_forward(self, num_rounds: int, delta: Tuple) -> None:
        for key, per_round in delta:
            if per_round and key in self._counts:
                self._counts[key] += num_rounds * per_round


_POLICIES = {
    "lifo": LIFOPolicy,
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a replacement policy by name (``lifo`` / ``lru`` / ``lfu``)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown cache policy {name!r}; known: {sorted(_POLICIES)}") from None


class ExpertCache:
    """A fixed-capacity cache of expert parameters resident in GPU memory.

    Parameters
    ----------
    capacity_experts:
        Maximum number of experts kept resident (0 disables caching).
    policy:
        Replacement policy name or instance.
    """

    def __init__(self, capacity_experts: int, policy: "str | EvictionPolicy" = "lru") -> None:
        if capacity_experts < 0:
            raise ValueError("capacity_experts must be non-negative")
        self.capacity = capacity_experts
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self._resident: Dict[ExpertKey, None] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: ExpertKey) -> bool:
        return key in self._resident

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def resident_keys(self) -> List[ExpertKey]:
        return list(self._resident.keys())

    def resident_for_block(self, block_index: int) -> List[int]:
        """Expert ids of ``block_index`` currently resident."""
        return [e for (b, e) in self._resident if b == block_index]

    # ------------------------------------------------------------------
    def lookup(self, key: ExpertKey) -> bool:
        """Check residency of an expert; updates hit/miss statistics."""
        if not self.enabled:
            self.stats.misses += 1
            return False
        if key in self._resident:
            self.stats.hits += 1
            self.policy.on_access(key)
            return True
        self.stats.misses += 1
        return False

    def insert(self, key: ExpertKey) -> Optional[ExpertKey]:
        """Insert an expert after it has been migrated to GPU memory.

        Returns the evicted key, if an eviction was required.
        """
        if not self.enabled:
            return None
        evicted = None
        if key in self._resident:
            self.policy.on_access(key)
            return None
        if len(self._resident) >= self.capacity:
            victim = self.policy.choose_victim(list(self._resident.keys()))
            del self._resident[victim]
            self.policy.on_evict(victim)
            self.stats.evictions += 1
            evicted = victim
        self._resident[key] = None
        self.policy.on_insert(key)
        return evicted

    def clear(self) -> None:
        for key in list(self._resident):
            self.policy.on_evict(key)
        self._resident.clear()


def cache_capacity_from_fraction(num_moe_blocks: int, num_experts: int, fraction: float) -> int:
    """Number of cacheable experts corresponding to a fraction of all experts.

    Figure 15 sweeps the cache size as 1%, 10% and 20% of the model's total
    expert count (blocks x experts-per-block).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    return int(round(fraction * num_moe_blocks * num_experts))
