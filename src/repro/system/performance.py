"""GPU compute latency model for transformer / MoE layers.

Converts the work of a layer (FLOPs executed, parameter bytes streamed from
HBM) into execution time on a :class:`~repro.system.hardware.GpuSpec` using a
roofline-style estimate plus fixed kernel-launch and dispatch overheads:

``time = launch_overheads + max(flops / peak_flops, bytes / hbm_bandwidth)``

At the single-batch decode sizes the paper evaluates, every layer is memory-
bandwidth- or overhead-bound, which is what makes the PCIe expert-migration
latency comparable to (rather than negligible next to) the MoE block's
execution time — the central tension the pre-gate resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..moe.configs import ModelConfig
from .hardware import GpuSpec


@dataclass(frozen=True)
class LayerCost:
    """Work performed by one layer invocation."""

    flops: float
    weight_bytes: float
    activation_bytes: float = 0.0
    num_kernels: int = 1

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes


class GpuLatencyModel:
    """Maps :class:`LayerCost` objects to execution times on a GPU.

    Parameters
    ----------
    gpu:
        The accelerator spec (peak FLOP/s, HBM bandwidth, overheads).
    compute_bytes_per_param:
        Precision of on-GPU compute (fp16 by default, matching
        FasterTransformer).
    """

    def __init__(self, gpu: GpuSpec, compute_bytes_per_param: int = 2) -> None:
        self.gpu = gpu
        self.compute_bytes_per_param = compute_bytes_per_param

    # ------------------------------------------------------------------
    # Generic roofline
    # ------------------------------------------------------------------
    def layer_time(self, cost: LayerCost) -> float:
        """Execution time of a layer described by ``cost`` (seconds)."""
        compute_time = cost.flops / self.gpu.flops_per_second
        memory_time = cost.total_bytes / self.gpu.hbm_bandwidth
        overhead = cost.num_kernels * self.gpu.kernel_launch_overhead
        return overhead + max(compute_time, memory_time)

    # ------------------------------------------------------------------
    # Layer-specific costs
    # ------------------------------------------------------------------
    def attention_cost(self, config: ModelConfig, query_tokens: int,
                       kv_tokens: Optional[int] = None) -> LayerCost:
        """One multi-head attention evaluation (self- or cross-attention)."""
        kv_tokens = kv_tokens if kv_tokens is not None else query_tokens
        d = config.d_model
        proj_flops = 4 * 2.0 * query_tokens * d * d
        score_flops = 2.0 * query_tokens * kv_tokens * d * 2
        weight_bytes = 4 * d * d * self.compute_bytes_per_param
        act_bytes = (query_tokens + 2 * kv_tokens) * d * self.compute_bytes_per_param
        return LayerCost(flops=proj_flops + score_flops, weight_bytes=weight_bytes,
                         activation_bytes=act_bytes, num_kernels=4)

    def ffn_cost(self, config: ModelConfig, tokens: int) -> LayerCost:
        """One dense FFN (equivalently: one expert) evaluation."""
        flops = 2 * 2.0 * tokens * config.d_model * config.d_ff
        weight_bytes = 2 * config.d_model * config.d_ff * self.compute_bytes_per_param
        act_bytes = tokens * (config.d_model + config.d_ff) * self.compute_bytes_per_param
        return LayerCost(flops=flops, weight_bytes=weight_bytes,
                         activation_bytes=act_bytes, num_kernels=2)

    def gate_cost(self, config: ModelConfig, tokens: int) -> LayerCost:
        """One gate / pre-gate function evaluation (compact MLP + softmax)."""
        flops = 2.0 * tokens * config.d_model * config.num_experts
        weight_bytes = config.d_model * config.num_experts * self.compute_bytes_per_param
        return LayerCost(flops=flops, weight_bytes=weight_bytes, num_kernels=2)

    def layernorm_cost(self, config: ModelConfig, tokens: int) -> LayerCost:
        flops = 5.0 * tokens * config.d_model
        act_bytes = 2 * tokens * config.d_model * self.compute_bytes_per_param
        return LayerCost(flops=flops, weight_bytes=0.0, activation_bytes=act_bytes, num_kernels=1)

    def lm_head_cost(self, config: ModelConfig, tokens: int) -> LayerCost:
        flops = 2.0 * tokens * config.d_model * config.vocab_size
        weight_bytes = config.d_model * config.vocab_size * self.compute_bytes_per_param
        return LayerCost(flops=flops, weight_bytes=weight_bytes, num_kernels=1)

    # ------------------------------------------------------------------
    # Aggregated times used by the serving engines
    # ------------------------------------------------------------------
    def attention_time(self, config: ModelConfig, query_tokens: int,
                       kv_tokens: Optional[int] = None) -> float:
        return self.layer_time(self.attention_cost(config, query_tokens, kv_tokens))

    def ffn_time(self, config: ModelConfig, tokens: int) -> float:
        return self.layer_time(self.ffn_cost(config, tokens))

    def gate_time(self, config: ModelConfig, tokens: int) -> float:
        return self.layer_time(self.gate_cost(config, tokens))

    def layernorm_time(self, config: ModelConfig, tokens: int) -> float:
        return self.layer_time(self.layernorm_cost(config, tokens))

    def lm_head_time(self, config: ModelConfig, tokens: int) -> float:
        return self.layer_time(self.lm_head_cost(config, tokens))

    def expert_execution_time(self, config: ModelConfig, tokens: int,
                              num_active_experts: int) -> float:
        """Expert-execution stage of one MoE block.

        ``tokens`` tokens are spread over ``num_active_experts`` experts; the
        weights of every active expert must be streamed from HBM and the MoE
        dispatch path (scatter, per-expert GEMM launches, gather) adds the
        GPU's ``moe_dispatch_overhead``.
        """
        if num_active_experts < 1:
            raise ValueError("num_active_experts must be >= 1")
        per_expert_tokens = max(1.0, tokens / num_active_experts)
        per_expert = self.ffn_cost(config, int(round(per_expert_tokens)))
        total = LayerCost(
            flops=per_expert.flops * num_active_experts,
            weight_bytes=per_expert.weight_bytes * num_active_experts,
            activation_bytes=per_expert.activation_bytes * num_active_experts,
            num_kernels=per_expert.num_kernels * num_active_experts,
        )
        return self.gpu.moe_dispatch_overhead + self.layer_time(total)

    def moe_block_compute_time(self, config: ModelConfig, tokens: int,
                               num_active_experts: int) -> float:
        """Gate + expert execution with everything resident (GPU-only block time)."""
        return self.gate_time(config, tokens) + self.expert_execution_time(
            config, tokens, num_active_experts)

    # ------------------------------------------------------------------
    # Per-transformer-block composites
    # ------------------------------------------------------------------
    def encoder_layer_nonmoe_time(self, config: ModelConfig, tokens: int) -> float:
        """Self-attention + norms of one encoder block (FFN/MoE excluded)."""
        return (self.attention_time(config, tokens)
                + 2 * self.layernorm_time(config, tokens))

    def decoder_layer_nonmoe_time(self, config: ModelConfig, query_tokens: int,
                                  self_kv_tokens: int, cross_kv_tokens: int) -> float:
        """Self-attention + cross-attention + norms of one decoder block."""
        return (self.attention_time(config, query_tokens, self_kv_tokens)
                + self.attention_time(config, query_tokens, cross_kv_tokens)
                + 3 * self.layernorm_time(config, query_tokens))
