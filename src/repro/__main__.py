"""``python -m repro`` — run a named benchmark sweep (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
