"""Numpy-backed tensor / neural-network substrate.

This package provides everything the Switch-Transformer and Pre-gated MoE
models are built from: a small reverse-mode autograd engine
(:mod:`repro.tensor.autograd`), neural-network layers
(:mod:`repro.tensor.layers`, :mod:`repro.tensor.attention`), functional ops
(:mod:`repro.tensor.functional`) and optimisers (:mod:`repro.tensor.optim`).

Two execution backends share one primitive registry
(:mod:`repro.tensor.primitives`): the default eager engine and an opt-in
lazy, fusing op-graph (:mod:`repro.tensor.lazy`) selected with
:func:`use_backend`.
"""

from .autograd import (
    Tensor,
    concatenate,
    embedding_lookup,
    no_grad,
    ones,
    randn,
    stack,
    tensor,
    where,
    zeros,
)
from .lazy import current_backend, use_backend
from .precision import (
    PrecisionPolicy,
    current_precision,
    current_precision_name,
    use_precision,
)
from .attention import FeedForward, KVCache, MultiHeadAttention
from .layers import Dropout, Embedding, LayerNorm, Linear
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, ConstantLR, WarmupInverseSqrtLR, clip_grad_norm
from . import functional

__all__ = [
    "Tensor",
    "concatenate",
    "embedding_lookup",
    "no_grad",
    "ones",
    "randn",
    "stack",
    "tensor",
    "where",
    "zeros",
    "current_backend",
    "use_backend",
    "PrecisionPolicy",
    "current_precision",
    "current_precision_name",
    "use_precision",
    "FeedForward",
    "KVCache",
    "MultiHeadAttention",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "SGD",
    "Adam",
    "ConstantLR",
    "WarmupInverseSqrtLR",
    "clip_grad_norm",
    "functional",
]
