"""Shared primitive registry: one forward / one gradient per operation.

Every differentiable operation of the tensor substrate is described once
here, as a :class:`Primitive` bundling

* ``forward`` — the numpy implementation (elementwise primitives accept an
  ``out=`` buffer so the lazy backend can fuse chains without allocating);
* ``vjp`` — the vector-Jacobian product.  VJPs are *pure* functions of
  ``(grad, out, inputs, needs, params)`` — they never rely on state saved
  during the forward pass, which is what lets the eager engine and the lazy
  graph share them verbatim (materialise whenever, differentiate once);
* ``shape`` — shape inference, so the lazy backend can answer ``.shape``
  without evaluating;
* ``elementwise`` — whether the op maps inputs to outputs pointwise
  (possibly with broadcasting); these are the ops the lazy backend fuses.

Both execution backends (:mod:`repro.tensor.autograd` eager,
:mod:`repro.tensor.lazy` deferred) dispatch through this table, so adding an
op here makes it available — with gradients — to both.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.tensor import precision as PR

_NEG_INF = -1e9


def _reduce_cast(x: np.ndarray):
    """Up-cast ``x`` to the policy's reduction dtype when it is wider.

    Returns ``(array, original_dtype_or_None)``: the numerically sensitive
    fused reductions below compute in the policy's reduction dtype (fp64
    under the ``mixed`` policy) and cast their results back to the input
    dtype.  Under the pure policies input and reduction dtype coincide, so
    this is a no-op — which is what keeps ``pure_fp64`` bit-identical to
    the historical engine.
    """
    rdt = PR.reduction_dtype()
    if x.dtype.itemsize < rdt.itemsize:
        return x.astype(rdt), x.dtype
    return x, None


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, the gradient
    flowing back has the broadcast (larger) shape.  This helper sums the
    gradient over the broadcast axes so it matches the original operand.
    """
    if grad.shape == shape:
        return grad
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Primitive:
    """One operation: forward, gradient and shape rule under a single name."""

    __slots__ = ("name", "forward", "vjp", "shape", "elementwise")

    def __init__(self, name: str,
                 forward: Callable[..., np.ndarray],
                 vjp: Optional[Callable[..., Sequence[Optional[np.ndarray]]]],
                 shape: Callable[..., Tuple[int, ...]],
                 elementwise: bool = False) -> None:
        self.name = name
        self.forward = forward
        self.vjp = vjp
        self.shape = shape
        self.elementwise = elementwise

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Primitive({self.name!r})"


REGISTRY: Dict[str, Primitive] = {}


def register(name: str, forward, vjp, shape, elementwise: bool = False) -> Primitive:
    if name in REGISTRY:
        raise ValueError(f"duplicate primitive {name!r}")
    prim = Primitive(name, forward, vjp, shape, elementwise)
    REGISTRY[name] = prim
    return prim


# ----------------------------------------------------------------------
# Shape rules
# ----------------------------------------------------------------------
def _broadcast_shape(*shapes, **_params):
    return np.broadcast_shapes(*shapes)


def _same_shape(shape, **_params):
    return shape


def _reduce_shape(shape, axis=None, keepdims=False):
    if axis is None:
        return shape if keepdims and not shape else ((1,) * len(shape) if keepdims else ())
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def _add_vjp(grad, out, inputs, needs, params):
    a, b = inputs
    return (unbroadcast(grad, a.shape) if needs[0] else None,
            unbroadcast(grad, b.shape) if needs[1] else None)


def _sub_vjp(grad, out, inputs, needs, params):
    a, b = inputs
    return (unbroadcast(grad, a.shape) if needs[0] else None,
            unbroadcast(-grad, b.shape) if needs[1] else None)


def _mul_vjp(grad, out, inputs, needs, params):
    a, b = inputs
    return (unbroadcast(grad * b, a.shape) if needs[0] else None,
            unbroadcast(grad * a, b.shape) if needs[1] else None)


def _div_vjp(grad, out, inputs, needs, params):
    a, b = inputs
    return (unbroadcast(grad / b, a.shape) if needs[0] else None,
            unbroadcast(-grad * out / b, b.shape) if needs[1] else None)


ADD = register("add", lambda a, b, out=None: np.add(a, b, out=out),
               _add_vjp, _broadcast_shape, elementwise=True)
SUB = register("sub", lambda a, b, out=None: np.subtract(a, b, out=out),
               _sub_vjp, _broadcast_shape, elementwise=True)
MUL = register("mul", lambda a, b, out=None: np.multiply(a, b, out=out),
               _mul_vjp, _broadcast_shape, elementwise=True)
DIV = register("div", lambda a, b, out=None: np.divide(a, b, out=out),
               _div_vjp, _broadcast_shape, elementwise=True)
NEG = register("neg", lambda a, out=None: np.negative(a, out=out),
               lambda grad, out, inputs, needs, params: (-grad,),
               _same_shape, elementwise=True)


def _pow_forward(a, out=None, exponent=2.0):
    return np.power(a, exponent, out=out)


def _pow_vjp(grad, out, inputs, needs, params):
    (a,) = inputs
    exponent = params["exponent"]
    return (grad * exponent * a ** (exponent - 1),)


POW = register("pow", _pow_forward, _pow_vjp, _same_shape, elementwise=True)


# ----------------------------------------------------------------------
# Elementwise non-linearities
# ----------------------------------------------------------------------
EXP = register("exp", lambda a, out=None: np.exp(a, out=out),
               lambda grad, out, inputs, needs, params: (grad * out,),
               _same_shape, elementwise=True)
LOG = register("log", lambda a, out=None: np.log(a, out=out),
               lambda grad, out, inputs, needs, params: (grad / inputs[0],),
               _same_shape, elementwise=True)
TANH = register("tanh", lambda a, out=None: np.tanh(a, out=out),
                lambda grad, out, inputs, needs, params: (grad * (1.0 - out * out),),
                _same_shape, elementwise=True)
SIGMOID = register(
    "sigmoid",
    lambda a, out=None: np.reciprocal(np.add(1.0, np.exp(np.negative(a, out=out), out=out), out=out), out=out)
    if out is not None else 1.0 / (1.0 + np.exp(-a)),
    lambda grad, out, inputs, needs, params: (grad * out * (1.0 - out),),
    _same_shape, elementwise=True)


def _relu_forward(a, out=None):
    return np.maximum(a, 0.0, out=out)


def _relu_vjp(grad, out, inputs, needs, params):
    return (grad * (out > 0),)


RELU = register("relu", _relu_forward, _relu_vjp, _same_shape, elementwise=True)

# A python float on purpose: NEP-50 promotion makes a ``np.float64`` scalar
# up-cast float32 operands, while a python float stays "weak" and preserves
# the array dtype under every precision policy.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def _gelu_forward(a, out=None):
    inner = _GELU_C * (a + 0.044715 * a ** 3)
    result = 0.5 * a * (1.0 + np.tanh(inner, out=inner))
    if out is not None:
        out[...] = result
        return out
    return result


def _gelu_vjp(grad, out, inputs, needs, params):
    x = inputs[0]
    inner = _GELU_C * (x + 0.044715 * x ** 3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner ** 2
    d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x ** 2)
    d = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
    return (grad * d,)


GELU = register("gelu", _gelu_forward, _gelu_vjp, _same_shape, elementwise=True)


# ----------------------------------------------------------------------
# Masking / selection (elementwise with constant operands)
# ----------------------------------------------------------------------
def _masked_fill_forward(a, out=None, mask=None, value=0.0):
    if out is None:
        return np.where(mask, value, a)
    np.copyto(out, a)
    np.copyto(out, value, where=mask)
    return out


def _masked_fill_vjp(grad, out, inputs, needs, params):
    mask = params["mask"]
    return (unbroadcast(np.where(mask, 0.0, grad), inputs[0].shape),)


MASKED_FILL = register(
    "masked_fill", _masked_fill_forward, _masked_fill_vjp,
    lambda shape, mask=None, value=0.0: np.broadcast_shapes(shape, np.shape(mask)),
    elementwise=True)


def _where_forward(a, b, out=None, cond=None):
    if out is None:
        return np.where(cond, a, b)
    np.copyto(out, b)
    np.copyto(out, a, where=cond)
    return out


def _where_vjp(grad, out, inputs, needs, params):
    cond = params["cond"]
    a, b = inputs
    return (unbroadcast(np.where(cond, grad, 0.0), a.shape) if needs[0] else None,
            unbroadcast(np.where(cond, 0.0, grad), b.shape) if needs[1] else None)


WHERE = register(
    "where", _where_forward, _where_vjp,
    lambda sa, sb, cond=None: np.broadcast_shapes(sa, sb, np.shape(cond)),
    elementwise=True)


# ----------------------------------------------------------------------
# Matrix multiply
# ----------------------------------------------------------------------
def _matmul_vjp(grad, out, inputs, needs, params):
    a, b = inputs
    grad_a = grad_b = None
    if needs[0]:
        grad_a = unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
    if needs[1]:
        grad_b = unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
    return (grad_a, grad_b)


def _matmul_shape(sa, sb):
    if len(sa) == 1 and len(sb) == 1:
        return ()
    if len(sb) == 1:
        return sa[:-1]
    if len(sa) == 1:
        return sb[:-2] + sb[-1:]
    batch = np.broadcast_shapes(sa[:-2], sb[:-2])
    return batch + (sa[-2], sb[-1])


MATMUL = register("matmul", lambda a, b: a @ b, _matmul_vjp, _matmul_shape)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def _reshape_forward(a, shape=None):
    return a.reshape(shape)


def _reshape_vjp(grad, out, inputs, needs, params):
    return (grad.reshape(inputs[0].shape),)


def _reshape_shape(s, shape=None):
    shape = tuple(shape)
    if -1 in shape:
        total = 1
        for dim in s:
            total *= dim
        known = 1
        for dim in shape:
            if dim != -1:
                known *= dim
        shape = tuple(total // known if dim == -1 else dim for dim in shape)
    return shape


RESHAPE = register("reshape", _reshape_forward, _reshape_vjp, _reshape_shape)


def _transpose_forward(a, axes=None, inverse=None):
    return a.transpose(axes)


def _transpose_vjp(grad, out, inputs, needs, params):
    return (grad.transpose(params["inverse"]),)


TRANSPOSE = register("transpose", _transpose_forward, _transpose_vjp,
                     lambda s, axes=None, inverse=None: tuple(s[a] for a in axes))


def _getitem_forward(a, index=None):
    return a[index]


def _getitem_vjp(grad, out, inputs, needs, params):
    full = np.zeros_like(inputs[0])
    np.add.at(full, params["index"], grad)
    return (full,)


# getitem shape depends on the index value; the dispatcher always evaluates
# it eagerly (fancy indexing is a materialisation point for the lazy graph).
GETITEM = register("getitem", _getitem_forward, _getitem_vjp,
                   lambda s, index=None: None)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def _sum_forward(a, axis=None, keepdims=False):
    return a.sum(axis=axis, keepdims=keepdims)


def _sum_vjp(grad, out, inputs, needs, params):
    a = inputs[0]
    axis, keepdims = params["axis"], params["keepdims"]
    g = grad
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        for ax in sorted(ax % a.ndim for ax in axes):
            g = np.expand_dims(g, ax)
    return (np.broadcast_to(g, a.shape),)


SUM = register("sum", _sum_forward, _sum_vjp,
               lambda s, axis=None, keepdims=False: _reduce_shape(s, axis, keepdims))


def _max_forward(a, axis=None, keepdims=False):
    return a.max(axis=axis, keepdims=keepdims)


def _max_vjp(grad, out, inputs, needs, params):
    a = inputs[0]
    axis, keepdims = params["axis"], params["keepdims"]
    g = grad
    expanded = out
    if axis is not None and not keepdims:
        g = np.expand_dims(g, axis)
        expanded = np.expand_dims(out, axis)
    mask = (a == expanded).astype(a.dtype)
    normaliser = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return (mask * g / np.maximum(normaliser, 1),)


MAX = register("max", _max_forward, _max_vjp,
               lambda s, axis=None, keepdims=False: _reduce_shape(s, axis, keepdims))


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
def _concatenate_forward(*arrays, axis=-1):
    return np.concatenate(arrays, axis=axis)


def _concatenate_vjp(grad, out, inputs, needs, params):
    axis = params["axis"]
    sizes = [a.shape[axis] for a in inputs]
    offsets = np.cumsum([0] + sizes)
    grads = []
    index = [slice(None)] * grad.ndim
    for i, a in enumerate(inputs):
        if not needs[i]:
            grads.append(None)
            continue
        index[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
        grads.append(grad[tuple(index)])
    return grads


def _concatenate_shape(*shapes, axis=-1):
    total = sum(s[axis] for s in shapes)
    base = list(shapes[0])
    base[axis] = total
    return tuple(base)


CONCATENATE = register("concatenate", _concatenate_forward, _concatenate_vjp,
                       _concatenate_shape)


def _stack_forward(*arrays, axis=0):
    return np.stack(arrays, axis=axis)


def _stack_vjp(grad, out, inputs, needs, params):
    split = np.moveaxis(grad, params["axis"], 0)
    return [split[i] if needs[i] else None for i in range(len(inputs))]


def _stack_shape(*shapes, axis=0):
    base = list(shapes[0])
    base.insert(axis if axis >= 0 else len(base) + 1 + axis, len(shapes))
    return tuple(base)


STACK = register("stack", _stack_forward, _stack_vjp, _stack_shape)


def _embedding_forward(weight, indices=None):
    return weight[indices]


def _embedding_vjp(grad, out, inputs, needs, params):
    weight = inputs[0]
    idx = params["indices"]
    full = np.zeros_like(weight)
    np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.shape[-1]))
    return (full,)


EMBEDDING = register("embedding", _embedding_forward, _embedding_vjp,
                     lambda s, indices=None: tuple(indices.shape) + (s[-1],))


# ----------------------------------------------------------------------
# Fused neural-network kernels
# ----------------------------------------------------------------------
# These collapse the composite op chains that dominate the model hot path
# (normalisation, attention softmax, the loss) into single primitives: one
# graph node, one forward call, one VJP — instead of ~10 of each.
#
# Saved activations: VJPs are pure functions of (grad, out, inputs, params),
# so they can always recompute their intermediates — that purity is what
# lets the lazy backend release and re-derive buffers.  As a *cache*, a
# forward may deposit intermediates into a mutable ``params["_saved"]`` dict
# when the caller provides one (the autograd layer does so only while
# gradients are enabled); the VJP uses the deposit when present and falls
# back to recomputation when not.  Correctness never depends on the cache.

def _softmax(x, axis):
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def _softmax_forward(x, axis=-1):
    wide, narrow = _reduce_cast(x)
    out = _softmax(wide, axis)
    return out if narrow is None else out.astype(narrow)


def _softmax_vjp(grad, out, inputs, needs, params):
    axis = params["axis"]
    grad, narrow = _reduce_cast(grad)
    if narrow is not None:
        out = out.astype(grad.dtype)
    inner = (grad * out).sum(axis=axis, keepdims=True)
    gx = out * (grad - inner)
    return (gx if narrow is None else gx.astype(narrow),)


SOFTMAX = register("softmax", _softmax_forward, _softmax_vjp, _same_shape)


def _log_softmax_forward(x, axis=-1):
    x, narrow = _reduce_cast(x)
    shifted = x - x.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    shifted -= lse
    return shifted if narrow is None else shifted.astype(narrow)


def _log_softmax_vjp(grad, out, inputs, needs, params):
    axis = params["axis"]
    grad, narrow = _reduce_cast(grad)
    if narrow is not None:
        out = out.astype(grad.dtype)
    gx = grad - np.exp(out) * grad.sum(axis=axis, keepdims=True)
    return (gx if narrow is None else gx.astype(narrow),)


LOG_SOFTMAX = register("log_softmax", _log_softmax_forward, _log_softmax_vjp,
                       _same_shape)


def _reduce_acc(dtype: np.dtype) -> np.dtype:
    """Accumulator dtype for ``dtype``-valued reductions under the policy.

    Unlike :func:`_reduce_cast` this never copies the operand: it is meant
    for numpy reductions that take a ``dtype=`` accumulator argument, so
    only the O(n)-term sum runs in the wide dtype while the surrounding
    elementwise arithmetic (and its memory traffic) stays narrow.
    """
    rdt = PR.reduction_dtype()
    return rdt if np.dtype(dtype).itemsize < rdt.itemsize else np.dtype(dtype)


def _layer_norm_forward(x, scale, shift, eps=1e-6, _saved=None):
    # Mean/variance sums accumulate in the policy's reduction dtype via the
    # reductions' ``dtype=`` accumulator; the normalisation arithmetic stays
    # in the input dtype.  Under ``mixed`` that keeps the fp64 digits where
    # n-term cancellation actually loses them without materialising fp64
    # copies of the (dominant) activations; under the pure policies every
    # cast below is a no-op and the kernel is bit-identical to the
    # historical engine.
    acc = _reduce_acc(x.dtype)
    mean = x.mean(axis=-1, keepdims=True, dtype=acc)
    centered = x - mean.astype(x.dtype, copy=False)
    var = np.mean(centered * centered, axis=-1, keepdims=True, dtype=acc)
    inv_std = (1.0 / np.sqrt(var + eps)).astype(x.dtype, copy=False)
    centered *= inv_std
    if _saved is not None:
        _saved["xhat"] = centered
        _saved["inv_std"] = inv_std
    return centered * scale + shift


def _layer_norm_vjp(grad, out, inputs, needs, params):
    x, scale, shift = inputs
    acc = _reduce_acc(grad.dtype)
    saved = params.get("_saved")
    if saved and "xhat" in saved:
        xhat, inv_std = saved["xhat"], saved["inv_std"]
    else:
        eps = params["eps"]
        mean = x.mean(axis=-1, keepdims=True, dtype=acc)
        centered = x - mean.astype(x.dtype, copy=False)
        var = np.mean(centered * centered, axis=-1, keepdims=True, dtype=acc)
        inv_std = (1.0 / np.sqrt(var + eps)).astype(x.dtype, copy=False)
        xhat = centered * inv_std
    grad_x = grad_scale = grad_shift = None
    if needs[0]:
        g = grad * scale
        gm = g.mean(axis=-1, keepdims=True, dtype=acc).astype(g.dtype,
                                                             copy=False)
        gxm = np.mean(g * xhat, axis=-1, keepdims=True,
                      dtype=acc).astype(g.dtype, copy=False)
        grad_x = (g - gm - xhat * gxm) * inv_std
    reduce_axes = tuple(range(grad.ndim - 1))
    if needs[1]:
        grad_scale = (grad * xhat).sum(axis=reduce_axes,
                                       dtype=acc).astype(scale.dtype,
                                                         copy=False)
    if needs[2]:
        grad_shift = grad.sum(axis=reduce_axes, dtype=acc).astype(shift.dtype,
                                                                  copy=False)
    return (grad_x, grad_scale, grad_shift)


LAYER_NORM = register("layer_norm", _layer_norm_forward, _layer_norm_vjp,
                      lambda sx, sscale, sshift, eps=1e-6, _saved=None: sx)


def _sdpa_forward(q, k, v, mask=None, scale=1.0, _saved=None):
    scores = q @ np.swapaxes(k, -1, -2)
    scores *= scale
    if mask is not None:
        np.copyto(scores, _NEG_INF, where=mask)
    weights = _softmax(scores, -1)
    if _saved is not None:
        _saved["weights"] = weights
    return weights @ v


def _sdpa_vjp(grad, out, inputs, needs, params):
    q, k, v = inputs
    mask, scale = params["mask"], params["scale"]
    saved = params.get("_saved")
    if saved and "weights" in saved:
        weights = saved["weights"]
    else:
        scores = q @ np.swapaxes(k, -1, -2)
        scores *= scale
        if mask is not None:
            np.copyto(scores, _NEG_INF, where=mask)
        weights = _softmax(scores, -1)
    grad_q = grad_k = grad_v = None
    if needs[2]:
        grad_v = unbroadcast(np.swapaxes(weights, -1, -2) @ grad, v.shape)
    grad_weights = grad @ np.swapaxes(v, -1, -2)
    inner = (grad_weights * weights).sum(axis=-1, keepdims=True)
    grad_scores = weights * (grad_weights - inner)
    grad_scores *= scale
    if needs[0]:
        grad_q = unbroadcast(grad_scores @ k, q.shape)
    if needs[1]:
        grad_k = unbroadcast(np.swapaxes(grad_scores, -1, -2) @ q, k.shape)
    return (grad_q, grad_k, grad_v)


SDPA = register("sdpa", _sdpa_forward, _sdpa_vjp,
                lambda sq, sk, sv, mask=None, scale=1.0, _saved=None: sq[:-1] + sv[-1:])


def _softmax_xent_forward(logits, targets=None, weights=None, denom=1.0):
    # The scalar loss stays in the reduction dtype (fp64 under ``mixed``):
    # it is the root of the backward pass and the quantity experiments log.
    logits, _ = _reduce_cast(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1))
    picked = shifted[np.arange(targets.shape[0]), targets]
    return np.asarray(((lse - picked) * weights).sum() / denom)


def _softmax_xent_vjp(grad, out, inputs, needs, params):
    (logits,) = inputs
    targets, weights, denom = params["targets"], params["weights"], params["denom"]
    wide, narrow = _reduce_cast(logits)
    probs = _softmax(wide, -1)
    probs[np.arange(targets.shape[0]), targets] -= 1.0
    probs *= (np.asarray(weights, dtype=probs.dtype) / denom)[:, None]
    probs *= grad
    return (probs if narrow is None else probs.astype(narrow),)


SOFTMAX_XENT = register("softmax_xent", _softmax_xent_forward, _softmax_xent_vjp,
                        lambda s, targets=None, weights=None, denom=1.0: ())


def _astype_forward(a, dtype=None):
    return a.astype(dtype)


def _astype_vjp(grad, out, inputs, needs, params):
    return (grad.astype(inputs[0].dtype),)


# Not elementwise: the lazy backend's fusion reuses ``out=`` buffers of the
# chain's dtype, which a dtype-changing op cannot share.
ASTYPE = register("astype", _astype_forward, _astype_vjp, _same_shape)
