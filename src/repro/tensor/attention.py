"""Multi-head attention for the transformer substrate.

Supports self-attention (with optional causal masking for the decoder) and
cross-attention (decoder attending to encoder output), plus incremental
decoding through an explicit key/value cache so the serving engines can run
token-by-token decoder iterations exactly as described in Figure 6 of the
paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .autograd import Tensor, scaled_dot_product_attention
from .layers import Linear
from .module import Module

_NEG_INF = -1e9


class KVCache:
    """Key/value cache for incremental decoding.

    Keys and values are stored in preallocated ``(batch, capacity, dim)``
    buffers that double in capacity when full, so appending one token is an
    amortised O(token) copy instead of re-concatenating the whole history
    (which made a T-token decode O(T²)).  :attr:`keys` / :attr:`values`
    expose zero-copy slice views of the filled prefix.
    """

    __slots__ = ("_keys", "_values", "_length")

    _MIN_CAPACITY = 16

    def __init__(self, keys: Optional[np.ndarray] = None,
                 values: Optional[np.ndarray] = None) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._length = 0
        if keys is not None:
            self.append(keys, values)

    def append(self, new_keys: np.ndarray, new_values: np.ndarray) -> None:
        new_keys = np.asarray(new_keys)
        new_values = np.asarray(new_values)
        batch, added, dim = new_keys.shape
        needed = self._length + added
        if self._keys is None:
            capacity = max(self._MIN_CAPACITY, needed)
            self._keys = np.empty((batch, capacity, dim), dtype=new_keys.dtype)
            self._values = np.empty((batch, capacity, dim), dtype=new_values.dtype)
        elif needed > self._keys.shape[1]:
            capacity = self._keys.shape[1]
            while capacity < needed:
                capacity *= 2
            for name in ("_keys", "_values"):
                old = getattr(self, name)
                grown = np.empty((batch, capacity, dim), dtype=old.dtype)
                grown[:, :self._length] = old[:, :self._length]
                setattr(self, name, grown)
        self._keys[:, self._length:needed] = new_keys
        self._values[:, self._length:needed] = new_values
        self._length = needed

    @property
    def keys(self) -> Optional[np.ndarray]:
        """View of the filled key prefix, ``(batch, length, dim)``."""
        return None if self._keys is None else self._keys[:, :self._length]

    @property
    def values(self) -> Optional[np.ndarray]:
        """View of the filled value prefix, ``(batch, length, dim)``."""
        return None if self._values is None else self._values[:, :self._length]

    @property
    def length(self) -> int:
        return self._length


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Parameters
    ----------
    dim:
        Model (embedding) dimension.
    num_heads:
        Number of attention heads; must divide ``dim``.
    causal:
        If True the attention is masked so position *i* cannot attend to
        positions greater than *i* (decoder self-attention).
    """

    def __init__(self, dim: int, num_heads: int, causal: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.out_proj = Linear(dim, dim, bias=False, rng=rng)

    # ------------------------------------------------------------------
    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    # ------------------------------------------------------------------
    def forward(
        self,
        query: Tensor,
        key: Optional[Tensor] = None,
        value: Optional[Tensor] = None,
        key_padding_mask: Optional[np.ndarray] = None,
        kv_cache: Optional[KVCache] = None,
    ) -> Tensor:
        """Compute attention output.

        Parameters
        ----------
        query:
            Tensor of shape ``(batch, q_len, dim)``.
        key / value:
            Source sequence for cross-attention.  Defaults to ``query``
            (self-attention).
        key_padding_mask:
            Boolean array ``(batch, k_len)`` that is True at padding
            positions that must not be attended to.
        kv_cache:
            When provided (decoder self-attention during incremental
            decoding) new keys/values are appended to the cache and
            attention is computed over the full cached sequence.
        """
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.q_proj(query))
        k_new = self.k_proj(key)
        v_new = self.v_proj(value)

        if kv_cache is not None:
            kv_cache.append(k_new.data, v_new.data)
            k = self._split_heads(Tensor(kv_cache.keys))
            v = self._split_heads(Tensor(kv_cache.values))
        else:
            k = self._split_heads(k_new)
            v = self._split_heads(v_new)

        q_len = q.shape[2]
        k_len = k.shape[2]
        mask: Optional[np.ndarray] = None
        if self.causal and kv_cache is None and q_len > 1:
            mask = F.causal_mask(q_len)[None, None, :, :]
        if key_padding_mask is not None:
            pad = np.asarray(key_padding_mask, dtype=bool)
            if pad.shape[-1] != k_len:
                raise ValueError(
                    f"key_padding_mask length {pad.shape[-1]} does not match key length {k_len}"
                )
            pad = pad[:, None, None, :]
            mask = pad if mask is None else (mask | pad)

        # Fused scores → mask → softmax → context kernel: one graph node
        # (repro.tensor.primitives.SDPA) instead of ~6 per attention call.
        context = scaled_dot_product_attention(
            q, k, v, mask=mask, scale=1.0 / np.sqrt(self.head_dim))
        return self.out_proj(self._merge_heads(context))


class FeedForward(Module):
    """Position-wise feed-forward network (the dense FFN of Figure 1a).

    The same module is used, unchanged, as the *expert layer* in the MoE
    block — the paper notes each expert has the same dimension as the dense
    FFN it replaces.
    """

    def __init__(self, dim: int, hidden_dim: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.activation = activation
        self.wi = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.wo = Linear(hidden_dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.wi(x)
        hidden = hidden.relu() if self.activation == "relu" else hidden.gelu()
        return self.wo(hidden)
