"""Multi-head attention for the transformer substrate.

Supports self-attention (with optional causal masking for the decoder) and
cross-attention (decoder attending to encoder output), plus incremental
decoding through an explicit key/value cache so the serving engines can run
token-by-token decoder iterations exactly as described in Figure 6 of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import functional as F
from .autograd import Tensor, concatenate
from .layers import Linear
from .module import Module

_NEG_INF = -1e9


@dataclass
class KVCache:
    """Key/value cache for incremental decoding.

    Keys and values are stored as plain numpy arrays of shape
    ``(batch, length, dim)`` and grown as decode steps append to them.
    """

    keys: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None

    def append(self, new_keys: np.ndarray, new_values: np.ndarray) -> None:
        if self.keys is None:
            self.keys = new_keys
            self.values = new_values
        else:
            self.keys = np.concatenate([self.keys, new_keys], axis=1)
            self.values = np.concatenate([self.values, new_values], axis=1)

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[1]


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Parameters
    ----------
    dim:
        Model (embedding) dimension.
    num_heads:
        Number of attention heads; must divide ``dim``.
    causal:
        If True the attention is masked so position *i* cannot attend to
        positions greater than *i* (decoder self-attention).
    """

    def __init__(self, dim: int, num_heads: int, causal: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.out_proj = Linear(dim, dim, bias=False, rng=rng)

    # ------------------------------------------------------------------
    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    # ------------------------------------------------------------------
    def forward(
        self,
        query: Tensor,
        key: Optional[Tensor] = None,
        value: Optional[Tensor] = None,
        key_padding_mask: Optional[np.ndarray] = None,
        kv_cache: Optional[KVCache] = None,
    ) -> Tensor:
        """Compute attention output.

        Parameters
        ----------
        query:
            Tensor of shape ``(batch, q_len, dim)``.
        key / value:
            Source sequence for cross-attention.  Defaults to ``query``
            (self-attention).
        key_padding_mask:
            Boolean array ``(batch, k_len)`` that is True at padding
            positions that must not be attended to.
        kv_cache:
            When provided (decoder self-attention during incremental
            decoding) new keys/values are appended to the cache and
            attention is computed over the full cached sequence.
        """
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.q_proj(query))
        k_new = self.k_proj(key)
        v_new = self.v_proj(value)

        if kv_cache is not None:
            kv_cache.append(k_new.data, v_new.data)
            k = self._split_heads(Tensor(kv_cache.keys))
            v = self._split_heads(Tensor(kv_cache.values))
        else:
            k = self._split_heads(k_new)
            v = self._split_heads(v_new)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale  # (batch, heads, q_len, k_len)

        q_len = scores.shape[2]
        k_len = scores.shape[3]
        if self.causal and kv_cache is None and q_len > 1:
            mask = F.causal_mask(q_len)[None, None, :, :]
            scores = scores.masked_fill(mask, _NEG_INF)
        if key_padding_mask is not None:
            pad = np.asarray(key_padding_mask, dtype=bool)
            if pad.shape[-1] != k_len:
                raise ValueError(
                    f"key_padding_mask length {pad.shape[-1]} does not match key length {k_len}"
                )
            scores = scores.masked_fill(pad[:, None, None, :], _NEG_INF)

        weights = F.softmax(scores, axis=-1)
        context = weights.matmul(v)
        return self.out_proj(self._merge_heads(context))


class FeedForward(Module):
    """Position-wise feed-forward network (the dense FFN of Figure 1a).

    The same module is used, unchanged, as the *expert layer* in the MoE
    block — the paper notes each expert has the same dimension as the dense
    FFN it replaces.
    """

    def __init__(self, dim: int, hidden_dim: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.activation = activation
        self.wi = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.wo = Linear(hidden_dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.wi(x)
        hidden = hidden.relu() if self.activation == "relu" else hidden.gelu()
        return self.wo(hidden)
