"""Lazy, fusing op-graph backend for the tensor substrate.

Instead of executing each primitive as it is issued (the eager engine in
:mod:`repro.tensor.autograd`), this backend *records* an expression graph of
:class:`LazyExpr` nodes over the shared primitive registry and only evaluates
when a value is actually demanded (``tensor.data`` / ``.numpy()`` /
``.item()`` / ``backward()``).

At materialisation the evaluator walks the recorded graph once in
topological order and

* **fuses elementwise chains**: elementwise primitives execute with ``out=``
  scratch buffers — an ``add → mul → relu → scale → bias`` chain becomes a
  sequence of ufunc calls writing into at most two recycled buffers, i.e. a
  single vectorized kernel with zero per-op allocation;
* **reuses output buffers**: when a transient intermediate's last consumer
  is a ufunc-safe elementwise op, the op writes *in place* into the dying
  input's buffer; otherwise dead buffers return to a shape-keyed pool and
  are handed to later nodes of the same shape.

Gradients come from the same registry VJPs as the eager backend: under grad
mode every recorded value is pinned (VJPs are pure functions of the forward
values), and :meth:`Tensor.backward` materialises the loss then runs the
ordinary eager backward pass.  This is why eager↔lazy parity is exact — the
same float64 numpy kernels run in the same order either way.

When the lazy graph stands down (evaluates eagerly despite the backend
switch):

* fancy indexing (``tensor[idx]``) — the result shape depends on the index
  values;
* ``detach()`` and any explicit ``.data`` / ``.numpy()`` / ``.item()``
  access — the caller asked for concrete numbers;
* custom closure ops built with ``Tensor._make`` (e.g. the grouped expert
  dispatch), which consume materialised inputs.

Usage::

    from repro import tensor as T

    with T.use_backend("lazy"):      # context manager ...
        loss = model_loss(batch)
        loss.backward()

    T.use_backend("lazy")            # ... or global switch
    T.use_backend("eager")
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import autograd as _ag
from repro.tensor import precision as PR
from repro.tensor import primitives as P

#: Elementwise primitives whose numpy ufunc tolerates ``out`` aliasing an
#: input operand, enabling true in-place chain fusion.
_UFUNC_SAFE = frozenset({
    "add", "sub", "mul", "div", "neg", "pow",
    "exp", "log", "tanh", "relu", "sigmoid",
})

#: Primitives whose result may be a *view* of their input.  Their inputs are
#: pinned (the view keeps the base buffer alive) and their own value is
#: never pooled.
_VIEW_PRIMS = frozenset({"reshape", "transpose"})

_EMPTY: dict = {}

#: Evaluator counters, for tests and the perf benchmark's observability.
_stats = {
    "materializations": 0,   # materialise calls that had to evaluate nodes
    "nodes_evaluated": 0,    # primitive executions
    "elementwise_fused": 0,  # elementwise ops executed into a reused buffer
    "inplace_reuses": 0,     # ... of which wrote in place into a dying input
    "pool_reuses": 0,        # ... of which recycled a pooled dead buffer
}


def stats() -> dict:
    """Return a copy of the lazy evaluator's counters."""
    return dict(_stats)


def reset_stats() -> None:
    for key in _stats:
        _stats[key] = 0


class LazyExpr:
    """One recorded primitive application in the deferred graph.

    ``inputs`` holds :class:`LazyExpr` nodes for deferred operands and raw
    ``numpy.ndarray`` leaves for concrete ones.  ``value`` caches the
    materialised result; for transient (unpinned) nodes the evaluator may
    release it for buffer reuse — a later demand recomputes from the
    (pure) primitive graph.
    """

    __slots__ = ("prim", "inputs", "params", "shape", "dtype", "value",
                 "pinned", "owned")

    def __init__(self, prim: P.Primitive, inputs: tuple, params: Optional[dict],
                 shape: Tuple[int, ...], dtype: np.dtype, pinned: bool,
                 owned: bool) -> None:
        self.prim = prim
        self.inputs = inputs
        self.params = params
        self.shape = shape
        self.dtype = dtype
        self.value: Optional[np.ndarray] = None
        self.pinned = pinned
        self.owned = owned

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cached" if self.value is not None else "deferred"
        return (f"LazyExpr({self.prim.name}, shape={self.shape}, "
                f"dtype={self.dtype}, {state})")


def _dispatch(prim: P.Primitive, parents: tuple, params: Optional[dict]):
    """Record ``prim`` over ``parents`` as a deferred expression node."""
    inputs = []
    shapes = []
    dtypes = []
    for parent in parents:
        if parent._data is not None:
            inputs.append(parent._data)
            shapes.append(parent._data.shape)
            dtypes.append(parent._data.dtype)
        else:
            expr = parent._lazy
            inputs.append(expr)
            shapes.append(expr.shape)
            dtypes.append(expr.dtype)
    if params is None:
        shape = prim.shape(*shapes)
    else:
        shape = prim.shape(*shapes, **params)

    # Dtype inference over ndarray/LazyExpr operands only — python scalars
    # were already coerced to the compute dtype upstream, so NEP-50 weak
    # promotion never leaks in here.
    name = prim.name
    if name == "astype":
        dtype = params["dtype"]
    elif name == "softmax_xent":
        rdt = PR.reduction_dtype()
        dtype = rdt if rdt.itemsize > dtypes[0].itemsize else dtypes[0]
    elif len(dtypes) == 1:
        dtype = dtypes[0]
    else:
        dtype = np.result_type(*dtypes)

    grad_on = _ag._grad_enabled
    is_view = prim.name in _VIEW_PRIMS
    expr = LazyExpr(prim, tuple(inputs), params, tuple(shape), np.dtype(dtype),
                    pinned=grad_on, owned=not is_view)
    if is_view:
        for inp in expr.inputs:
            if type(inp) is LazyExpr:
                inp.pinned = True

    out = _ag.Tensor.__new__(_ag.Tensor)
    out._data = None
    out._lazy = expr
    out.grad = None
    out._backward = None
    out.name = ""
    if grad_on:
        for parent in parents:
            if parent.requires_grad:
                out.requires_grad = True
                out._prim = prim
                out._parents = parents
                out._params = params
                return out
    out.requires_grad = False
    out._prim = None
    out._parents = ()
    out._params = None
    return out


def materialize(root: LazyExpr) -> np.ndarray:
    """Evaluate ``root``, fusing elementwise chains and recycling buffers."""
    if root.value is not None:
        return root.value
    # The returned array escapes into Tensor._data — it must never be
    # released back into the buffer pool by a later materialisation.
    root.pinned = True

    # Iterative post-order over the not-yet-evaluated subgraph.
    order: list[LazyExpr] = []
    visited: set[int] = set()
    stack: list[tuple[LazyExpr, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for inp in node.inputs:
            if type(inp) is LazyExpr and inp.value is None and id(inp) not in visited:
                stack.append((inp, False))

    # Remaining-use counts *within this evaluation* drive buffer recycling.
    uses: dict[int, int] = {}
    for node in order:
        for inp in node.inputs:
            if type(inp) is LazyExpr:
                uses[id(inp)] = uses.get(id(inp), 0) + 1

    _stats["materializations"] += 1
    _stats["nodes_evaluated"] += len(order)
    # Keyed by (shape, dtype): an fp32 chain must never scribble into a
    # recycled fp64 buffer (or vice versa) when precision policies mix.
    pool: dict[tuple, list] = {}
    for node in order:
        values = [inp.value if type(inp) is LazyExpr else inp
                  for inp in node.inputs]
        prim = node.prim
        params = node.params
        if prim.elementwise:
            out = None
            if prim.name in _UFUNC_SAFE:
                # Last consumer of a transient owned intermediate: write in
                # place into the dying input's buffer.
                for inp, value in zip(node.inputs, values):
                    if (type(inp) is LazyExpr and not inp.pinned and inp.owned
                            and uses.get(id(inp)) == 1
                            and value.shape == node.shape
                            and value.dtype == node.dtype):
                        out = value
                        _stats["inplace_reuses"] += 1
                        break
            if out is None and not node.pinned:
                free = pool.get((node.shape, node.dtype))
                if free:
                    out = free.pop()
                    _stats["pool_reuses"] += 1
            if out is not None:
                _stats["elementwise_fused"] += 1
                result = (prim.forward(*values, out=out) if params is None
                          else prim.forward(*values, out=out, **params))
            else:
                result = (prim.forward(*values) if params is None
                          else prim.forward(*values, **params))
        else:
            result = (prim.forward(*values) if params is None
                      else prim.forward(*values, **params))
        node.value = result
        # Release inputs whose last use this was.
        for inp in node.inputs:
            if type(inp) is LazyExpr:
                remaining = uses[id(inp)] - 1
                uses[id(inp)] = remaining
                if remaining == 0 and not inp.pinned:
                    buffer = inp.value
                    inp.value = None
                    if inp.owned and buffer is not result:
                        pool.setdefault((buffer.shape, buffer.dtype),
                                        []).append(buffer)
    return root.value


class use_backend:
    """Switch the tensor execution backend (``"eager"`` or ``"lazy"``).

    Acts as a *global switch* the moment it is constructed, and as a
    *context manager* that restores the previous backend on exit::

        T.use_backend("lazy")          # stays lazy until switched back

        with T.use_backend("lazy"):    # lazy inside the block only
            ...
    """

    def __init__(self, name: str) -> None:
        if name not in ("eager", "lazy"):
            raise ValueError(f"unknown tensor backend {name!r}; "
                             f"expected 'eager' or 'lazy'")
        self._previous = _ag._backend_lazy
        _ag._backend_lazy = name == "lazy"

    def __enter__(self) -> "use_backend":
        return self

    def __exit__(self, *exc) -> None:
        _ag._backend_lazy = self._previous


def current_backend() -> str:
    """Return the name of the active tensor backend."""
    return "lazy" if _ag._backend_lazy else "eager"


# Install the hooks the eager module dispatches through; keeping them here
# avoids a circular import between autograd and lazy.
_ag._lazy_dispatch = _dispatch
_ag._lazy_materialize = materialize
