"""Precision policies for the tensor substrate.

Every array in the tensor stack was historically hard-wired ``float64`` —
numerically bulletproof, but it pinned the real-model hot path to the
float64 BLAS floor of the host (fp32 GEMM runs ~2x faster per core and
doubles cache residency).  This module makes the dtype a *policy*:

=============  =========  ========  ======  ==========  ==============
policy         compute    params    grads   reductions  master weights
=============  =========  ========  ======  ==========  ==============
``pure_fp64``  float64    float64   float64 float64     (none)
``pure_fp32``  float32    float32   float32 float32     (none)
``mixed``      float32    float32   float32 float64     float64 (Adam)
=============  =========  ========  ======  ==========  ==============

* **compute** — the dtype activations are created and combined in (the
  default coercion dtype of :func:`repro.tensor.autograd._as_array`);
* **params** — the working-copy dtype of :class:`~repro.tensor.module.
  Parameter` payloads (what the forward pass multiplies by);
* **grads** — the accumulation dtype of ``Tensor.grad``;
* **reductions** — the internal dtype of the numerically sensitive fused
  reductions (softmax, log-softmax, LayerNorm statistics and the fused
  softmax–cross-entropy loss).  Under ``mixed`` these up-cast their fp32
  inputs to fp64, reduce, and cast the result back to the compute dtype
  (the scalar loss itself stays fp64);
* **master weights** — when set, :class:`~repro.tensor.optim.Adam` keeps
  an fp64 master copy of every lower-precision parameter and applies the
  update there, so tiny per-step updates are never rounded away by the
  fp32 working copy (the classic mixed-precision recipe).

``pure_fp64`` is the default and is **bit-identical** to the historical
engine: every cast in the stack is guarded by a dtype comparison, so under
the default policy no conversion (and no copy) ever happens.  All recorded
paper figures are therefore untouched by this layer.

Usage mirrors :func:`repro.tensor.use_backend`::

    from repro import tensor as T

    with T.use_precision("mixed"):       # context manager ...
        model = SwitchTransformer(config, seed=0)
        train(model)

    T.use_precision("pure_fp32")         # ... or global switch
    T.use_precision("pure_fp64")

The policy is consulted at *array-creation* points (tensor constructors,
parameter registration, gradient stashes, optimiser state), so the policy
active while a model is built and trained determines its precision; the
two backends (eager / lazy) inherit it transparently because both execute
the same primitives on the same arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

#: Dtypes a tensor may be explicitly created with.  Anything else (ints,
#: bools, half precision, complex) raises — silent coercion is reserved
#: for the *implicit* path where the policy supplies the dtype.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


@dataclass(frozen=True)
class PrecisionPolicy:
    """One named assignment of dtypes to the tensor stack's roles."""

    name: str
    compute_dtype: np.dtype
    param_dtype: np.dtype
    grad_dtype: np.dtype
    reduction_dtype: np.dtype
    master_dtype: Optional[np.dtype] = None

    def __post_init__(self) -> None:
        for field in ("compute_dtype", "param_dtype", "grad_dtype",
                      "reduction_dtype"):
            object.__setattr__(self, field, np.dtype(getattr(self, field)))
        if self.master_dtype is not None:
            object.__setattr__(self, "master_dtype", np.dtype(self.master_dtype))

    @property
    def keeps_master_weights(self) -> bool:
        """Whether optimisers should hold a higher-precision master copy."""
        return (self.master_dtype is not None
                and self.master_dtype != self.param_dtype)


PURE_FP64 = PrecisionPolicy("pure_fp64", np.float64, np.float64, np.float64,
                            np.float64)
PURE_FP32 = PrecisionPolicy("pure_fp32", np.float32, np.float32, np.float32,
                            np.float32)
MIXED = PrecisionPolicy("mixed", np.float32, np.float32, np.float32,
                        np.float64, master_dtype=np.float64)

POLICIES: Dict[str, PrecisionPolicy] = {
    policy.name: policy for policy in (PURE_FP64, PURE_FP32, MIXED)
}

#: The active policy.  Module-level so the hot-path accessors below are a
#: single attribute load; mutated only through :class:`use_precision`.
_active: PrecisionPolicy = PURE_FP64


def current_precision() -> PrecisionPolicy:
    """Return the active :class:`PrecisionPolicy`."""
    return _active


def compute_dtype() -> np.dtype:
    """Dtype new tensors/activations are created in under the active policy."""
    return _active.compute_dtype


def param_dtype() -> np.dtype:
    """Dtype of parameter working copies under the active policy."""
    return _active.param_dtype


def grad_dtype() -> np.dtype:
    """Dtype gradients accumulate in under the active policy."""
    return _active.grad_dtype


def reduction_dtype() -> np.dtype:
    """Internal dtype of the fused numerically sensitive reductions."""
    return _active.reduction_dtype


def master_dtype() -> Optional[np.dtype]:
    """Master-weight dtype for optimisers, or None when masters are off."""
    return _active.master_dtype if _active.keeps_master_weights else None


def validate_dtype(dtype) -> np.dtype:
    """Normalise an explicit user dtype, rejecting unsupported ones.

    Raises ``ValueError`` naming the offending dtype — the tensor stack
    only computes in fp32/fp64, and silently coercing an explicit request
    (the historical behaviour for *implicit* inputs) hides bugs.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(f"unsupported dtype {dtype!r} for Tensor; "
                         f"expected one of float32/float64") from exc
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(f"unsupported dtype {resolved.name!r} for Tensor; "
                         f"expected one of float32/float64")
    return resolved


def resolve_dtype(dtype) -> np.dtype:
    """Explicit dtype (validated) or the policy compute dtype when None."""
    if dtype is None:
        return _active.compute_dtype
    return validate_dtype(dtype)


class use_precision:
    """Switch the active precision policy.

    Mirrors :class:`repro.tensor.lazy.use_backend`: acts as a *global
    switch* the moment it is constructed and as a *context manager* that
    restores the previous policy on exit::

        T.use_precision("mixed")           # stays mixed until switched back

        with T.use_precision("mixed"):     # mixed inside the block only
            ...
    """

    def __init__(self, policy: Union[str, PrecisionPolicy]) -> None:
        global _active
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise ValueError(
                    f"unknown precision policy {policy!r}; expected one of "
                    f"{sorted(POLICIES)}")
            policy = POLICIES[policy]
        elif not isinstance(policy, PrecisionPolicy):
            raise ValueError(
                f"unknown precision policy {policy!r}; expected one of "
                f"{sorted(POLICIES)} or a PrecisionPolicy")
        self._previous = _active
        _active = policy

    def __enter__(self) -> "use_precision":
        return self

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._previous


def current_precision_name() -> str:
    """Name of the active policy (``"pure_fp64"`` by default)."""
    return _active.name
