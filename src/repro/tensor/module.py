"""Module / Parameter abstractions for the numpy NN substrate.

Mirrors the familiar ``nn.Module`` contract: parameters register themselves
when assigned as attributes, submodules nest, and the whole tree can be
iterated for optimisation, serialisation (``state_dict``) or parameter
counting (needed by the capacity model in :mod:`repro.moe.capacity`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import precision as PR
from .autograd import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable model parameter.

    The payload is stored in the active precision policy's parameter dtype
    (float64 under the default ``pure_fp64`` policy); pass ``dtype=`` to
    override explicitly.
    """

    def __init__(self, data, name: str = "", dtype=None) -> None:
        target = PR.param_dtype() if dtype is None else PR.validate_dtype(dtype)
        super().__init__(np.asarray(data, dtype=target), requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters and submodules as attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter / module traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping from parameter name to a copy of its data."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from ``state`` (as produced by :meth:`state_dict`).

        With ``strict=False`` parameters missing from ``state`` are left
        untouched and extra entries are ignored — this is how pre-gated
        models reuse the pre-trained weights of a conventional MoE whose
        gate layout differs (Section IV-B of the paper).
        """
        own = dict(self.named_parameters())
        if strict:
            missing = set(own) - set(state)
            unexpected = set(state) - set(own)
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
                )
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                    )
                param.data = value.copy()


class ModuleList(Module):
    """Container holding an ordered list of submodules."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
