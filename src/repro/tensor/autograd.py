"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the numpy NN substrate used throughout the
reproduction.  It provides a :class:`Tensor` wrapper around ``numpy.ndarray``
that records the operations applied to it and can back-propagate gradients
through them with :meth:`Tensor.backward`.

The design is intentionally small and explicit: each primitive operation
builds a closure that knows how to push the output gradient back to its
inputs.  Broadcasting is handled by summing gradients over broadcast
dimensions (:func:`unbroadcast`).

Only the operations required by the Switch-Transformer / Pre-gated MoE models
are implemented, but they are implemented carefully and are covered by unit
and property-based tests (``tests/tensor``).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_grad_enabled = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during inference and evaluation to avoid building the autograd
    graph.  Mirrors the semantics of ``torch.no_grad``.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, the gradient
    flowing back has the broadcast (larger) shape.  This helper sums the
    gradient over the broadcast axes so it matches the original operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``float64`` by default for
        numerical robustness of gradient checks.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor to all ancestors.

        Each op's backward closure accumulates into its parents' ``grad``
        via :meth:`_stash`; the engine only has to visit nodes in reverse
        topological order and invoke each node's closure with the node's
        (by then fully accumulated) gradient.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0`` which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Iterative topological sort to avoid recursion limits on deep models.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._stash(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._stash(unbroadcast(grad, other_t.shape))

        return self._binary(other_t, data, backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._stash(unbroadcast(-grad, other_t.shape))

        return self._binary(other_t, data, backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._stash(unbroadcast(grad * self.data, other_t.shape))

        return self._binary(other_t, data, backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._stash(
                    unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
                )

        return self._binary(other_t, data, backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad * exponent * self.data ** (exponent - 1))

        return self._unary(data, backward)

    # ------------------------------------------------------------------
    # Matrix multiply
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other_t.data, -1, -2)
                self._stash(unbroadcast(grad_self, self.shape))
            if other_t.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other_t._stash(unbroadcast(grad_other, other_t.shape))

        return self._binary(other_t, data, backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad.reshape(original_shape))

        return self._unary(data, backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad.transpose(inverse))

        return self._unary(data, backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._stash(full)

        return self._unary(data, backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._stash(np.broadcast_to(g, self.shape).copy())

        return self._unary(data, backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Distribute gradient evenly across ties for determinism.
            normaliser = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._stash(mask * g / np.maximum(normaliser, 1))

        return self._unary(data, backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad * data)

        return self._unary(data, backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad / self.data)

        return self._unary(data, backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad * (1.0 - data ** 2))

        return self._unary(data, backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad * mask)

        return self._unary(data, backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(grad * data * (1.0 - data))

        return self._unary(data, backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            sech2 = 1.0 - tanh_inner ** 2
            d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
            d = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._stash(grad * d)

        return self._unary(data, backward)

    # ------------------------------------------------------------------
    # Masking / selection
    # ------------------------------------------------------------------
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with positions where ``mask`` is true set to ``value``."""
        mask_arr = np.asarray(mask, dtype=bool)
        data = np.where(mask_arr, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._stash(unbroadcast(np.where(mask_arr, 0.0, grad), self.shape))

        return self._unary(data, backward)

    # ------------------------------------------------------------------
    # Internal plumbing for gradient routing
    # ------------------------------------------------------------------
    # Each op's backward closure calls parent._stash(g).  During a backward
    # pass the engine drains the stash of a node right before invoking its
    # own backward closure so gradients flow in topological order.
    def _stash(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def _unary(self, data: np.ndarray, backward: Callable[[np.ndarray], None]) -> "Tensor":
        return Tensor._make(data, (self,), backward)

    def _binary(self, other: "Tensor", data: np.ndarray, backward: Callable[[np.ndarray], None]) -> "Tensor":
        return Tensor._make(data, (self, other), backward)


# ----------------------------------------------------------------------
# Free-function constructors and combinators
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape: Sequence[int], scale: float = 1.0, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(end))
                t._stash(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        split = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, split):
            if t.requires_grad:
                t._stash(g)

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    cond = np.asarray(condition, dtype=bool)
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._stash(unbroadcast(np.where(cond, grad, 0.0), a_t.shape))
        if b_t.requires_grad:
            b_t._stash(unbroadcast(np.where(cond, 0.0, grad), b_t.shape))

    return Tensor._make(data, (a_t, b_t), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at ``indices`` (integer array).

    Gradient scatters back into the embedding matrix with ``np.add.at`` so
    repeated indices accumulate correctly.
    """
    idx = np.asarray(indices, dtype=np.int64)
    data = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.shape[-1]))
            weight._stash(full)

    return Tensor._make(data, (weight,), backward)
