"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the numpy NN substrate used throughout the
reproduction.  It provides a :class:`Tensor` wrapper around ``numpy.ndarray``
that records the operations applied to it and can back-propagate gradients
through them with :meth:`Tensor.backward`.

Every operation dispatches through the shared primitive registry
(:mod:`repro.tensor.primitives`): a node stores which primitive produced it
plus its parents and parameters, and the backward engine calls the
primitive's VJP.  Because the lazy backend (:mod:`repro.tensor.lazy`)
records the *same* primitives, gradients come from exactly one
implementation regardless of execution backend — the backward pass is
always eager numpy over materialised values.

Broadcasting is handled by summing gradients over broadcast dimensions
(:func:`unbroadcast`).  Only the operations required by the
Switch-Transformer / Pre-gated MoE models are implemented, but they are
implemented carefully and are covered by unit and property-based tests
(``tests/tensor``).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import precision as PR
from repro.tensor import primitives as P
from repro.tensor.primitives import unbroadcast  # noqa: F401  (re-export)

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_grad_enabled = True

# Backend switch.  ``repro.tensor.lazy`` flips ``_backend_lazy`` via
# ``use_backend`` and installs the two hooks below when it is imported, which
# keeps this module free of a circular import.
_backend_lazy = False
_lazy_dispatch: Optional[Callable] = None
_lazy_materialize: Optional[Callable] = None

_EMPTY_PARAMS: dict = {}


class no_grad:
    """Context manager that disables gradient tracking.

    Used during inference and evaluation to avoid building the autograd
    graph.  Mirrors the semantics of ``torch.no_grad``.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _grad_enabled


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to an ndarray of the active policy's compute dtype.

    An explicit ``dtype`` (already validated by the caller) overrides the
    policy.  Existing arrays of the target dtype pass through without a
    copy, which is what keeps ``pure_fp64`` bit-identical to the
    historical always-float64 behaviour.
    """
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=PR.compute_dtype() if dtype is None else dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to the active precision policy's
        compute dtype (``float64`` under the default ``pure_fp64``
        policy) unless ``dtype`` is given explicitly.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    dtype:
        Optional explicit dtype.  Must be float32 or float64; anything
        else raises ``ValueError`` naming the offending dtype instead of
        silently coercing.
    """

    __slots__ = ("_data", "grad", "requires_grad", "_prim", "_parents",
                 "_params", "_backward", "_lazy", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
        dtype=None,
    ) -> None:
        self._data = _as_array(data, None if dtype is None
                               else PR.validate_dtype(dtype))
        self._lazy = None
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self._prim = None
        self._params = None
        self.name = name

    # ------------------------------------------------------------------
    # Data access (materialises lazy tensors on demand)
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        d = self._data
        if d is None:
            d = self._data = _lazy_materialize(self._lazy)
        return d

    @data.setter
    def data(self, value) -> None:
        self._data = value if isinstance(value, np.ndarray) else _as_array(value)
        self._lazy = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        if self._data is not None:
            return self._data.shape
        return self._lazy.shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        size = 1
        for dim in self.shape:
            size *= dim
        return size

    @property
    def dtype(self):
        if self._data is not None:
            return self._data.dtype
        return self._lazy.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Cast to ``dtype`` (float32/float64) as a differentiable op.

        The gradient of a cast is a cast back to the input dtype.  Casting
        to the tensor's own dtype returns ``self`` unchanged.  Unsupported
        dtypes raise ``ValueError`` naming the offending dtype.
        """
        dtype = PR.validate_dtype(dtype)
        if self.dtype == dtype:
            return self
        return _dispatch(P.ASTYPE, (self,), {"dtype": dtype})

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a node with a custom backward closure.

        Escape hatch for composite ops with hand-written gradients (e.g. the
        grouped expert dispatch); regular ops go through the registry.
        """
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor to all ancestors.

        The engine visits nodes in reverse topological order.  Registry
        nodes invoke their primitive's VJP on the node's (by then fully
        accumulated) gradient; custom nodes invoke their closure.  Either
        way gradients accumulate into parents via :meth:`_stash`.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0`` which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        data = self.data
        if grad is None:
            if data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(data)
        grad = _as_array(grad)

        # Iterative topological sort to avoid recursion limits on deep models.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._stash(grad)
        for node in reversed(topo):
            node_grad = node.grad
            if node_grad is None:
                continue
            if node._backward is not None:
                node._backward(node_grad)
            elif node._prim is not None:
                parents = node._parents
                inputs = tuple(p.data for p in parents)
                needs = tuple(p.requires_grad for p in parents)
                grads = node._prim.vjp(node_grad, node.data, inputs, needs,
                                       node._params or _EMPTY_PARAMS)
                for parent, parent_grad in zip(parents, grads):
                    if parent_grad is not None and parent.requires_grad:
                        parent._stash(parent_grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        return _dispatch(P.ADD, (self, other if isinstance(other, Tensor) else Tensor(other)), None)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return _dispatch(P.SUB, (self, other if isinstance(other, Tensor) else Tensor(other)), None)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return _dispatch(P.MUL, (self, other if isinstance(other, Tensor) else Tensor(other)), None)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return _dispatch(P.DIV, (self, other if isinstance(other, Tensor) else Tensor(other)), None)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return _dispatch(P.NEG, (self,), None)

    def __pow__(self, exponent: float) -> "Tensor":
        return _dispatch(P.POW, (self,), {"exponent": exponent})

    # ------------------------------------------------------------------
    # Matrix multiply
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        return _dispatch(P.MATMUL, (self, other if isinstance(other, Tensor) else Tensor(other)), None)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _dispatch(P.RESHAPE, (self,), {"shape": shape})

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(int(i) for i in np.argsort(axes))
        return _dispatch(P.TRANSPOSE, (self,), {"axes": axes, "inverse": inverse})

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        # Fancy indexing depends on index *values*, so it is always eager —
        # a materialisation point for the lazy graph.
        data = self.data[index]
        return _wrap(data, P.GETITEM, (self,), {"index": index})

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        return _dispatch(P.SUM, (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return _dispatch(P.MAX, (self,), {"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return _dispatch(P.EXP, (self,), None)

    def log(self) -> "Tensor":
        return _dispatch(P.LOG, (self,), None)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        return _dispatch(P.TANH, (self,), None)

    def relu(self) -> "Tensor":
        return _dispatch(P.RELU, (self,), None)

    def sigmoid(self) -> "Tensor":
        return _dispatch(P.SIGMOID, (self,), None)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        return _dispatch(P.GELU, (self,), None)

    # ------------------------------------------------------------------
    # Masking / selection
    # ------------------------------------------------------------------
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with positions where ``mask`` is true set to ``value``."""
        mask_arr = np.asarray(mask, dtype=bool)
        return _dispatch(P.MASKED_FILL, (self,), {"mask": mask_arr, "value": value})

    # ------------------------------------------------------------------
    # Fused NN kernels (single graph node each)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        return _dispatch(P.SOFTMAX, (self,), {"axis": axis})

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return _dispatch(P.LOG_SOFTMAX, (self,), {"axis": axis})

    # ------------------------------------------------------------------
    # Internal plumbing for gradient routing
    # ------------------------------------------------------------------
    # The engine (or a custom op's closure) accumulates gradients into a
    # node via ``_stash``.  The first stash copies — VJPs may return views
    # or the upstream gradient itself — and later stashes add in place.
    def _stash(self, grad: np.ndarray) -> None:
        current = self.grad
        if current is None:
            self.grad = np.array(grad, dtype=PR.grad_dtype(), copy=True)
        elif current.shape == grad.shape:
            np.add(current, grad, out=current)
        else:
            self.grad = current + grad


def _wrap(data: np.ndarray, prim: P.Primitive, parents: Tuple[Tensor, ...],
          params: Optional[dict]) -> Tensor:
    """Build the output node for an already-computed primitive result."""
    out = Tensor.__new__(Tensor)
    out._data = data
    out._lazy = None
    out.grad = None
    out._backward = None
    out.name = ""
    if _grad_enabled:
        for parent in parents:
            if parent.requires_grad:
                out.requires_grad = True
                out._prim = prim
                out._parents = parents
                out._params = params
                return out
    out.requires_grad = False
    out._prim = None
    out._parents = ()
    out._params = None
    return out


def _dispatch(prim: P.Primitive, parents: Tuple[Tensor, ...],
              params: Optional[dict]) -> Tensor:
    """Execute ``prim`` on ``parents`` under the active backend."""
    if _backend_lazy:
        return _lazy_dispatch(prim, parents, params)
    if params is None:
        data = prim.forward(*[p.data for p in parents])
    else:
        data = prim.forward(*[p.data for p in parents], **params)
    return _wrap(data, prim, parents, params)


# ----------------------------------------------------------------------
# Free-function constructors and combinators
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape: Sequence[int], requires_grad: bool = False, dtype=None) -> Tensor:
    dtype = PR.resolve_dtype(dtype)
    return Tensor(np.zeros(shape, dtype=dtype),
                  requires_grad=requires_grad, dtype=dtype)


def ones(shape: Sequence[int], requires_grad: bool = False, dtype=None) -> Tensor:
    dtype = PR.resolve_dtype(dtype)
    return Tensor(np.ones(shape, dtype=dtype),
                  requires_grad=requires_grad, dtype=dtype)


def randn(shape: Sequence[int], scale: float = 1.0, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False, dtype=None) -> Tensor:
    # Always draw in float64 then cast, so every precision sees the *same*
    # weights (down-cast), not a different random stream per dtype.
    rng = rng or np.random.default_rng()
    values = rng.standard_normal(shape) * scale
    dtype = PR.resolve_dtype(dtype)
    if values.dtype != dtype:
        values = values.astype(dtype)
    return Tensor(values, requires_grad=requires_grad, dtype=dtype)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    return _dispatch(P.CONCATENATE, tuple(tensors), {"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    return _dispatch(P.STACK, tuple(tensors), {"axis": axis})


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    cond = np.asarray(condition, dtype=bool)
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    return _dispatch(P.WHERE, (a_t, b_t), {"cond": cond})


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at ``indices`` (integer array).

    Gradient scatters back into the embedding matrix with ``np.add.at`` so
    repeated indices accumulate correctly.
    """
    idx = np.asarray(indices, dtype=np.int64)
    return _dispatch(P.EMBEDDING, (weight,), {"indices": idx})


def layer_norm(x: Tensor, scale: Tensor, shift: Tensor, eps: float = 1e-6) -> Tensor:
    """Fused layer normalisation over the last axis (one graph node)."""
    params = {"eps": eps}
    if _grad_enabled:
        # Let the forward cache x̂/inv_std for the VJP (recomputed otherwise).
        params["_saved"] = {}
    return _dispatch(P.LAYER_NORM, (x, scale, shift), params)


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 mask: Optional[np.ndarray] = None,
                                 scale: float = 1.0) -> Tensor:
    """Fused attention core ``softmax(q @ k^T * scale) @ v`` (one node).

    ``mask`` is a boolean array, broadcastable against the score matrix,
    that marks positions to suppress.
    """
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
    params = {"mask": mask, "scale": scale}
    if _grad_enabled:
        # Let the forward cache the softmax weights for the VJP.
        params["_saved"] = {}
    return _dispatch(P.SDPA, (q, k, v), params)


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray,
                          weights: np.ndarray, denom: float) -> Tensor:
    """Fused ``sum(weights * xent(logits, targets)) / denom`` (one node).

    ``logits`` is ``(N, num_classes)``, ``targets`` ``(N,)`` int class ids,
    ``weights`` ``(N,)`` per-row float weights (use 0.0 to ignore a row).
    """
    targets = np.asarray(targets, dtype=np.int64)
    weights = np.asarray(weights, dtype=PR.compute_dtype())
    return _dispatch(P.SOFTMAX_XENT, (logits,),
                     {"targets": targets, "weights": weights, "denom": float(denom)})
