"""Composite differentiable operations built on :mod:`repro.tensor.autograd`.

These are the neural-network level functions (softmax, cross-entropy,
dropout, one-hot, top-k helpers) shared by the dense transformer blocks and
the MoE routing code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import precision as PR
from .autograd import Tensor, softmax_cross_entropy


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (one fused graph node)."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` (one fused graph node)."""
    return x.log_softmax(axis=axis)


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: Optional[int] = None) -> Tensor:
    """Token-level cross-entropy loss.

    Computed as a single fused softmax–cross-entropy node
    (:data:`repro.tensor.primitives.SOFTMAX_XENT`): the forward pass never
    builds the full log-softmax tensor graph and the backward pass is the
    closed-form ``softmax - one_hot`` instead of a scatter into the vocab
    axis.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., vocab)``.
    targets:
        Integer array of shape ``(...)`` with target token ids.
    ignore_index:
        Optional target value whose positions contribute zero loss
        (used for padding).
    """
    targets = np.asarray(targets, dtype=np.int64)
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones_like(flat_targets, dtype=bool)
    # Replace ignored targets with 0 so the gather is valid; they are masked out.
    safe_targets = np.where(mask, flat_targets, 0)
    weights = mask.astype(PR.compute_dtype())
    denom = max(float(weights.sum()), 1.0)
    return softmax_cross_entropy(flat_logits, safe_targets, weights, denom)


def one_hot(indices: np.ndarray, depth: int, dtype=None) -> np.ndarray:
    """Return a float one-hot encoding of integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (depth,),
                   dtype=PR.compute_dtype() if dtype is None
                   else PR.validate_dtype(dtype))
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  Identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.shape) >= rate).astype(PR.compute_dtype())
    return x * Tensor(keep / (1.0 - rate))


def top_k_indices(scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return the indices and values of the top-``k`` entries along the last axis.

    Results are sorted by descending score so index 0 is the arg-max.  This is
    a plain numpy helper (no gradient); routing decisions are discrete.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, scores.shape[-1])
    part = np.argpartition(-scores, k - 1, axis=-1)[..., :k]
    part_scores = np.take_along_axis(scores, part, axis=-1)
    order = np.argsort(-part_scores, axis=-1)
    idx = np.take_along_axis(part, order, axis=-1)
    vals = np.take_along_axis(part_scores, order, axis=-1)
    return idx, vals


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask of shape ``(length, length)`` that is True above the diagonal.

    Positions where the mask is True must not be attended to.
    """
    return np.triu(np.ones((length, length), dtype=bool), k=1)


def padding_mask(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Boolean mask (True at padding positions) from a batch of token ids."""
    return np.asarray(token_ids) == pad_id
