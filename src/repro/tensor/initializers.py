"""Weight initialisation schemes for the NN substrate."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.tensor import precision as PR


def _finish(values: np.ndarray, dtype) -> np.ndarray:
    """Cast freshly drawn fp64 values to the requested / policy dtype.

    Draws always happen in float64 so every precision policy sees the *same*
    initial weights (bit-for-bit after the cast) for a given seed.
    """
    target = PR.param_dtype() if dtype is None else PR.validate_dtype(dtype)
    return values if values.dtype == target else values.astype(target)


def xavier_uniform(shape: Sequence[int], rng: Optional[np.random.Generator] = None,
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _finish(rng.uniform(-limit, limit, size=tuple(shape)), dtype)


def xavier_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None,
                  dtype=None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _finish(rng.normal(0.0, std, size=tuple(shape)), dtype)


def kaiming_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None,
                   dtype=None) -> np.ndarray:
    """He initialisation suited to ReLU activations."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return _finish(rng.normal(0.0, std, size=tuple(shape)), dtype)


def truncated_normal(shape: Sequence[int], std: float = 0.02,
                     rng: Optional[np.random.Generator] = None,
                     dtype=None) -> np.ndarray:
    """Truncated normal initialisation (values clipped at two standard deviations).

    Switch-Transformer initialises weights with a truncated normal scaled by
    the layer fan-in; this helper follows the same convention.
    """
    rng = rng or np.random.default_rng()
    values = rng.normal(0.0, std, size=tuple(shape))
    return _finish(np.clip(values, -2 * std, 2 * std), dtype)


def zeros_init(shape: Sequence[int], dtype=None) -> np.ndarray:
    return np.zeros(tuple(shape),
                    dtype=PR.param_dtype() if dtype is None else PR.validate_dtype(dtype))


def ones_init(shape: Sequence[int], dtype=None) -> np.ndarray:
    return np.ones(tuple(shape),
                   dtype=PR.param_dtype() if dtype is None else PR.validate_dtype(dtype))


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
