"""Optimisers and learning-rate schedules for fine-tuning.

The paper fine-tunes both the conventional and pre-gated Switch-Transformer
with an identical recipe (constant learning rate of 1e-4, identical step
count); :class:`Adam` plus :class:`ConstantLR` reproduce that recipe on the
numpy substrate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from . import precision as PR
from .module import Parameter


class Optimizer:
    """Base optimiser holding a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                vel *= self.momentum
                vel += param.grad
                update = vel
            else:
                update = param.grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction.

    Under a precision policy with master weights (``mixed``), every
    lower-precision parameter gets an fp64 *master copy* at construction
    time; moments and the update are computed in fp64 against the master,
    and the fp32 working copy is refreshed from it after every step.  This
    keeps tiny per-step updates (lr·m̂ ≪ 1 ulp of fp32 weights) from being
    rounded away — the classic mixed-precision training recipe.  Under the
    pure policies no master exists and the update runs exactly as before.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-4,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        master_dtype = PR.master_dtype()
        self._masters = [
            p.data.astype(master_dtype)
            if master_dtype is not None and p.data.dtype != master_dtype
            else None
            for p in self.params]
        # Moments (and scratch) live at master precision when a master
        # exists; otherwise at the parameter's own dtype.
        states = [p.data if master is None else master
                  for p, master in zip(self.params, self._masters)]
        self._m = [np.zeros_like(s) for s in states]
        self._v = [np.zeros_like(s) for s in states]
        # One persistent scratch buffer per parameter keeps the update loop
        # free of per-step allocations.
        self._scratch = [np.empty_like(s) for s in states]
        # Persistent wide landing pad for the fp32 gradient of each
        # master-weight parameter (again: no per-step allocation).
        self._grad_wide = [None if master is None else np.empty_like(master)
                           for master in self._masters]

    def step(self) -> None:
        self._step += 1
        # Bias corrections are scalars per step; folding them into the
        # update as ``(lr / bias1) * m / (sqrt(v) / sqrt(bias2) + eps)``
        # avoids materialising m_hat / v_hat arrays per parameter.
        step_scale = self.lr / (1.0 - self.beta1 ** self._step)
        denom_scale = 1.0 / np.sqrt(1.0 - self.beta2 ** self._step)
        for param, master, m, v, scratch, gwide in zip(
                self.params, self._masters, self._m, self._v,
                self._scratch, self._grad_wide):
            grad = param.grad
            if grad is None:
                continue
            if master is not None:
                np.copyto(gwide, grad, casting="same_kind")
                grad = gwide
                target = master
            else:
                target = param.data
            if self.weight_decay:
                grad = grad + self.weight_decay * target
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            np.sqrt(v, out=scratch)
            scratch *= denom_scale
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= step_scale
            if master is not None:
                master -= scratch
                np.copyto(param.data, master, casting="same_kind")
            else:
                param.data -= scratch


class LRSchedule:
    """Base class for learning-rate schedules attached to an optimiser."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.step_count = 0

    def step(self) -> float:
        self.step_count += 1
        lr = self.get_lr(self.step_count)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Constant learning rate — the paper's fine-tuning schedule."""

    def __init__(self, optimizer: Optimizer, lr: Optional[float] = None) -> None:
        super().__init__(optimizer)
        self.lr = lr if lr is not None else optimizer.lr

    def get_lr(self, step: int) -> float:
        return self.lr


class WarmupInverseSqrtLR(LRSchedule):
    """Inverse-square-root decay with linear warmup (T5 pre-training style)."""

    def __init__(self, optimizer: Optimizer, peak_lr: float, warmup_steps: int) -> None:
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps

    def get_lr(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.peak_lr * step / self.warmup_steps
        return self.peak_lr * np.sqrt(self.warmup_steps / step)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a maximum global L2 norm.

    Returns the pre-clipping norm so callers can log it.
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(
        float(np.dot(g, g)) for g in (np.ravel(p.grad) for p in params))))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
