"""Core neural-network layers: Linear, LayerNorm, Embedding, Dropout.

These layers form the dense ("non-MoE") portion of the Switch-Transformer
substrate: attention projections, layer norms, embeddings and the expert FFN
layers are all assembled from them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .autograd import Tensor, embedding_lookup, layer_norm
from .initializers import truncated_normal, zeros_init, ones_init
from .module import Module, Parameter


class Linear(Module):
    """Affine transformation ``y = x @ W + b``.

    Parameters
    ----------
    in_features / out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learned bias (Switch-Transformer FFNs are bias-free,
        matching the T5 convention, so the MoE expert layers pass
        ``bias=False``).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        std = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(truncated_normal((in_features, out_features), std=std, rng=rng),
                                name="weight")
        self.has_bias = bias
        if bias:
            self.bias = Parameter(zeros_init((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.has_bias:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    Uses the RMS-free classic formulation (mean/variance) with learned scale
    and shift, matching the normalisation used in the transformer blocks of
    Figure 1 of the paper.
    """

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.scale = Parameter(ones_init((dim,)), name="scale")
        self.shift = Parameter(zeros_init((dim,)), name="shift")

    def forward(self, x: Tensor) -> Tensor:
        # Single fused graph node (repro.tensor.primitives.LAYER_NORM)
        # instead of the ~9-op mean/var/normalise composite.
        return layer_norm(x, self.scale, self.shift, self.eps)


class Embedding(Module):
    """Token embedding table with gather-based lookup."""

    def __init__(self, vocab_size: int, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(truncated_normal((vocab_size, dim), std=0.02, rng=rng), name="weight")

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.vocab_size):
            raise IndexError(
                f"token id out of range [0, {self.vocab_size}): "
                f"min={token_ids.min()}, max={token_ids.max()}"
            )
        return embedding_lookup(self.weight, token_ids)


class Dropout(Module):
    """Inverted dropout layer (identity in eval mode)."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)
