"""Pre-gated MoE — the paper's core algorithm-system contribution.

* :mod:`repro.core.pregate` — the pre-gate function, pre-gate schedule and
  pre-gated MoE block (algorithm side).
* :mod:`repro.core.pregated_model` — the full pre-gated Switch-Transformer.
* :mod:`repro.core.migration` — preemptive expert-migration planning
  (system side).
* :mod:`repro.core.peak_memory` — the peak GPU memory model (Equation 1).
"""

from .migration import (
    ExpertTransfer,
    MigrationKind,
    MigrationPlan,
    plan_for_design,
    plan_gpu_only,
    plan_on_demand,
    plan_prefetch_all,
    plan_pregated,
)
from .peak_memory import (
    ActivationReserve,
    activated_experts_per_block,
    gpu_only_peak_memory,
    ondemand_peak_memory,
    peak_memory,
    peak_memory_comparison,
    prefetch_all_peak_memory,
    pregated_peak_memory,
)
from .pregate import PreGate, PreGateSchedule, PreGatedMoEBlock
from .pregated_model import PreGatedDecoderBlock, PreGatedEncoderBlock, PreGatedSwitchTransformer

__all__ = [
    "ExpertTransfer",
    "MigrationKind",
    "MigrationPlan",
    "plan_for_design",
    "plan_gpu_only",
    "plan_on_demand",
    "plan_prefetch_all",
    "plan_pregated",
    "ActivationReserve",
    "activated_experts_per_block",
    "gpu_only_peak_memory",
    "ondemand_peak_memory",
    "peak_memory",
    "peak_memory_comparison",
    "prefetch_all_peak_memory",
    "pregated_peak_memory",
    "PreGate",
    "PreGateSchedule",
    "PreGatedMoEBlock",
    "PreGatedDecoderBlock",
    "PreGatedEncoderBlock",
    "PreGatedSwitchTransformer",
]
