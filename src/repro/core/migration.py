"""Preemptive expert-migration planning.

The migration planner converts a per-block expert-activation sequence (who
is activated, when it becomes known) into a schedule of CPU→GPU transfers
for each of the offloading designs:

* **MoE-OnDemand** — the activated experts of block *N* become known only
  when block *N*'s gate runs, so the transfer is issued *after* selection
  and blocks execution (serialised).
* **MoE-Prefetch** — all experts of block *N+1* are transferred during block
  *N*'s execution, regardless of which will be used.
* **Pre-gated MoE** — the pre-gate evaluated in block *N* identifies the
  activated experts of block *N+1*; only those are transferred, concurrently
  with block *N*'s execution.

The planner is purely about *what* to move and *when it can start*; the
discrete-event timeline in :mod:`repro.system.timeline` decides how long the
moves take and how much of them overlaps with compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Set


class MigrationKind(Enum):
    """Why an expert transfer was issued."""

    ON_DEMAND = "on_demand"          # issued after the block's own gate (serialised)
    PREFETCH_ALL = "prefetch_all"    # speculatively move every expert of the next block
    PREFETCH_ACTIVE = "prefetch_active"  # pre-gated: move only the activated experts


@dataclass(frozen=True)
class ExpertTransfer:
    """A single expert parameter migration from CPU (or SSD) to GPU memory."""

    block_index: int        # MoE block whose execution needs this expert
    expert_id: int
    kind: MigrationKind
    issue_block: int        # MoE block during whose execution the transfer may start
    bytes: int
    #: Memory tier the expert's parameters start from ("dram" or "ssd").
    #: Stamped by the planner from the system's offload tier; a multi-hop
    #: source means the fetch crosses several links (SSD→DRAM→GPU).
    source_tier: str = "dram"

    @property
    def is_overlappable(self) -> bool:
        """Whether the transfer can overlap with a preceding block's execution."""
        return self.issue_block < self.block_index

    def hop_breakdown(self, path) -> list:
        """Per-hop byte/latency attribution of this transfer.

        ``path`` is the :class:`~repro.system.tiers.TierPath` from
        :attr:`source_tier` up to HBM (the system spec builds it); returns
        one :class:`~repro.system.tiers.HopBreakdown` per link crossed.
        """
        if path.source != self.source_tier:
            raise ValueError(
                f"path starts at {path.source!r} but this transfer's source "
                f"tier is {self.source_tier!r}")
        return path.breakdown(self.bytes)


@dataclass
class MigrationPlan:
    """The full expert-transfer schedule for one decoder iteration.

    Plans are built once and then only read (the scheduler memoises and
    shares them across rounds), so per-block lookups run off a lazily built
    index that is invalidated if the transfer list grows after first use.
    """

    design: str
    transfers: List[ExpertTransfer] = field(default_factory=list)
    _by_block: "dict[int, List[ExpertTransfer]] | None" = field(
        default=None, init=False, repr=False, compare=False)
    _by_issue: "dict[int, List[ExpertTransfer]] | None" = field(
        default=None, init=False, repr=False, compare=False)
    _indexed_len: int = field(default=-1, init=False, repr=False, compare=False)

    def _build_indexes(self) -> None:
        if self._indexed_len == len(self.transfers):
            return
        by_block: dict[int, List[ExpertTransfer]] = {}
        by_issue: dict[int, List[ExpertTransfer]] = {}
        for transfer in self.transfers:
            by_block.setdefault(transfer.block_index, []).append(transfer)
            by_issue.setdefault(transfer.issue_block, []).append(transfer)
        self._by_block = by_block
        self._by_issue = by_issue
        self._indexed_len = len(self.transfers)

    def transfers_for_block(self, block_index: int) -> List[ExpertTransfer]:
        """Transfers required before ``block_index`` can execute its experts."""
        self._build_indexes()
        return self._by_block.get(block_index, [])

    def by_issue_block(self) -> "dict[int, List[ExpertTransfer]]":
        """Transfers grouped by the block whose execution issues them."""
        self._build_indexes()
        return self._by_issue

    def issued_during_block(self, issue_block: int) -> List[ExpertTransfer]:
        """Transfers that may be in flight while ``issue_block`` executes."""
        return [t for t in self.transfers if t.issue_block == issue_block and t.is_overlappable]

    def total_bytes(self) -> int:
        return sum(t.bytes for t in self.transfers)

    def total_experts(self) -> int:
        return len(self.transfers)

    def bytes_for_block(self, block_index: int) -> int:
        return sum(t.bytes for t in self.transfers_for_block(block_index))


def plan_on_demand(activations: Sequence[Sequence[int]], expert_bytes: int,
                   resident: Optional[Sequence[Set[int]]] = None,
                   source_tier: str = "dram") -> MigrationPlan:
    """MoE-OnDemand: fetch each block's activated experts after its own gate.

    Parameters
    ----------
    activations:
        ``activations[i]`` is the list of expert ids activated by MoE block
        ``i`` in this decoder iteration.
    expert_bytes:
        Size of one expert's parameters.
    resident:
        Optional per-block set of experts already resident in GPU memory
        (e.g. from an expert cache); resident experts are not transferred.
    source_tier:
        Memory tier the experts are fetched from ("dram" or "ssd").
    """
    plan = MigrationPlan(design="ondemand")
    for block, experts in enumerate(activations):
        cached = resident[block] if resident is not None else set()
        for expert in experts:
            if expert in cached:
                continue
            plan.transfers.append(ExpertTransfer(
                block_index=block, expert_id=int(expert), kind=MigrationKind.ON_DEMAND,
                issue_block=block, bytes=expert_bytes, source_tier=source_tier))
    return plan


def plan_prefetch_all(activations: Sequence[Sequence[int]], expert_bytes: int,
                      num_experts: int, source_tier: str = "dram") -> MigrationPlan:
    """MoE-Prefetch: move every expert of block *i* during block *i-1*.

    The first block has no predecessor, so its full expert set is fetched
    on demand (serialised), mirroring SE-MoE's behaviour.
    """
    plan = MigrationPlan(design="prefetch_all")
    for block in range(len(activations)):
        issue_block = max(block - 1, 0)
        kind = MigrationKind.PREFETCH_ALL if block > 0 else MigrationKind.ON_DEMAND
        for expert in range(num_experts):
            plan.transfers.append(ExpertTransfer(
                block_index=block, expert_id=expert, kind=kind,
                issue_block=issue_block, bytes=expert_bytes, source_tier=source_tier))
    return plan


def plan_pregated(activations: Sequence[Sequence[int]], expert_bytes: int,
                  activation_level: int = 1,
                  resident: Optional[Sequence[Set[int]]] = None,
                  source_tier: str = "dram") -> MigrationPlan:
    """Pre-gated MoE: move only the activated experts, ``activation_level`` blocks early.

    Block *i*'s activated experts are known when block ``i - activation_level``
    runs its pre-gate, so the transfer is issued during that block's
    execution.  Blocks ``0..activation_level-1`` are covered by the first
    gates, which run before any expert execution — their transfers are
    issued at block 0 and the first block's transfer is the only one that
    cannot be overlapped with expert execution (it can still overlap with
    the non-MoE layers preceding it, which the timeline models).
    """
    if activation_level < 1:
        raise ValueError("activation_level must be >= 1")
    plan = MigrationPlan(design="pregated")
    for block, experts in enumerate(activations):
        cached = resident[block] if resident is not None else set()
        if block < activation_level:
            issue_block = 0
            kind = MigrationKind.ON_DEMAND if block == 0 else MigrationKind.PREFETCH_ACTIVE
        else:
            issue_block = block - activation_level
            kind = MigrationKind.PREFETCH_ACTIVE
        for expert in experts:
            if expert in cached:
                continue
            plan.transfers.append(ExpertTransfer(
                block_index=block, expert_id=int(expert), kind=kind,
                issue_block=issue_block, bytes=expert_bytes, source_tier=source_tier))
    return plan


def plan_gpu_only(activations: Sequence[Sequence[int]]) -> MigrationPlan:
    """GPU-only: no expert migration at all (everything already resident)."""
    return MigrationPlan(design="gpu_only", transfers=[])


_PLANNERS = {
    "gpu_only": "plan_gpu_only",
    "ondemand": "plan_on_demand",
    "prefetch_all": "plan_prefetch_all",
    "pregated": "plan_pregated",
}


def plan_for_design(design: str, activations: Sequence[Sequence[int]], expert_bytes: int,
                    num_experts: int, activation_level: int = 1,
                    resident: Optional[Sequence[Set[int]]] = None,
                    source_tier: str = "dram") -> MigrationPlan:
    """Dispatch to the planner for ``design``."""
    if design == "gpu_only":
        return plan_gpu_only(activations)
    if design == "ondemand":
        return plan_on_demand(activations, expert_bytes, resident=resident,
                              source_tier=source_tier)
    if design == "prefetch_all":
        return plan_prefetch_all(activations, expert_bytes, num_experts,
                                 source_tier=source_tier)
    if design == "pregated":
        return plan_pregated(activations, expert_bytes,
                             activation_level=activation_level, resident=resident,
                             source_tier=source_tier)
    raise ValueError(f"unknown design {design!r}; known: {sorted(_PLANNERS)}")
