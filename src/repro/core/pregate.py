"""The pre-gate function and pre-gated MoE block (the paper's algorithm).

In a conventional MoE block the gate selects experts for the *same* block,
which forces expert selection and expert execution to serialise.  The
pre-gate function in MoE block *N* instead selects the experts to activate
for MoE block *N + activation_level* (the paper's default activation level
is 1, i.e. the next block), removing the in-block data dependency and
letting the system overlap expert migration with expert execution
(Section IV-B, Figures 5-7).

Block-boundary handling (Figure 6):

* The **first** MoE block carries ``activation_level`` extra "first gates"
  that select the experts for blocks ``0 .. activation_level-1`` (for the
  default level of 1 this is exactly the paper's "two gate functions" in the
  first block: one conventional first gate plus one pre-gate).
* The **last** ``activation_level`` MoE blocks carry no pre-gate, because
  there is no subsequent block within the same decoder iteration for them to
  select for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..tensor import Module, ModuleList, Tensor
from ..moe.expert import ExpertPool
from ..moe.gating import Router, RoutingDecision


@dataclass
class PreGateSchedule:
    """Static description of which gate selects experts for which MoE block.

    For a stack of ``num_blocks`` MoE blocks and a given ``activation_level``
    N, the experts of block *i* are selected by:

    * a *first gate* evaluated at block 0, when ``i < N``;
    * the *pre-gate* of block ``i - N`` otherwise.

    The pre-gate of block *j* exists only when ``j + N < num_blocks``.
    """

    num_blocks: int
    activation_level: int

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.activation_level < 1:
            raise ValueError("activation_level must be >= 1")

    def selector_of(self, block_index: int) -> str:
        """Which gate selects the experts of ``block_index``.

        Returns ``"first_gate"`` or ``"pre_gate"``.
        """
        self._check(block_index)
        return "first_gate" if block_index < self.activation_level else "pre_gate"

    def selecting_block(self, block_index: int) -> int:
        """Index of the MoE block whose gate selects experts for ``block_index``.

        First-gate selections are attributed to block 0 (they are evaluated
        there, before any expert execution).
        """
        self._check(block_index)
        if block_index < self.activation_level:
            return 0
        return block_index - self.activation_level

    def has_pre_gate(self, block_index: int) -> bool:
        """Whether MoE block ``block_index`` carries a pre-gate function."""
        self._check(block_index)
        return block_index + self.activation_level < self.num_blocks

    def num_first_gates(self) -> int:
        """Number of first gates housed in MoE block 0."""
        return min(self.activation_level, self.num_blocks)

    def _check(self, block_index: int) -> None:
        if not 0 <= block_index < self.num_blocks:
            raise IndexError(f"block_index {block_index} out of range [0, {self.num_blocks})")


class PreGate(Router):
    """A gate function trained to select experts for a *future* MoE block.

    Mechanically identical to :class:`~repro.moe.gating.Router`; the
    difference is semantic — the routing decision it emits applies to the MoE
    block ``activation_level`` positions ahead — and is tracked via
    :attr:`target_offset` so the serving system knows which block's experts
    to prefetch.
    """

    def __init__(self, d_model: int, num_experts: int, top_k: int = 1,
                 target_offset: int = 1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(d_model, num_experts, top_k=top_k, rng=rng)
        if target_offset < 1:
            raise ValueError("target_offset must be >= 1")
        self.target_offset = target_offset


class PreGatedMoEBlock(Module):
    """An MoE block whose experts are selected by an *earlier* block's pre-gate.

    Parameters
    ----------
    d_model, d_ff, num_experts, top_k:
        Expert pool dimensions (identical to the conventional MoE block).
    block_index:
        Index of this block within the stack's MoE-block ordering.
    schedule:
        The :class:`PreGateSchedule` of the stack this block belongs to.
    """

    def __init__(self, d_model: int, d_ff: int, num_experts: int, top_k: int = 1,
                 block_index: int = 0, schedule: Optional[PreGateSchedule] = None,
                 activation: str = "relu", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.d_model = d_model
        self.d_ff = d_ff
        self.num_experts = num_experts
        self.top_k = top_k
        self.block_index = block_index
        self.schedule = schedule or PreGateSchedule(num_blocks=block_index + 1, activation_level=1)
        self.experts = ExpertPool(num_experts, d_model, d_ff, activation=activation, rng=rng)

        # Pre-gate for the block `activation_level` positions ahead, if any.
        if self.schedule.has_pre_gate(block_index):
            self.pre_gate = PreGate(d_model, num_experts, top_k=top_k,
                                    target_offset=self.schedule.activation_level, rng=rng)
        else:
            self.pre_gate = None

        # First gates (housed in block 0 only): select experts for blocks
        # 0 .. activation_level-1 using block 0's input representation.
        if block_index == 0:
            self.first_gates = ModuleList([
                Router(d_model, num_experts, top_k=top_k, rng=rng)
                for _ in range(self.schedule.num_first_gates())
            ])
        else:
            self.first_gates = ModuleList([])

    # ------------------------------------------------------------------
    def select_first(self, hidden: Tensor, target_block: int,
                     top_k: Optional[int] = None) -> RoutingDecision:
        """Evaluate the first gate that selects experts for ``target_block``.

        Only valid on MoE block 0 and for ``target_block < activation_level``.
        """
        if self.block_index != 0:
            raise RuntimeError("first gates only exist on the first MoE block")
        if not 0 <= target_block < len(self.first_gates):
            raise IndexError(
                f"no first gate for target block {target_block} "
                f"(have {len(self.first_gates)})"
            )
        return self.first_gates[target_block](hidden, top_k=top_k)

    def select_next(self, hidden: Tensor, top_k: Optional[int] = None) -> Optional[RoutingDecision]:
        """Evaluate this block's pre-gate (selection for a future block).

        Returns None for blocks that carry no pre-gate (the trailing blocks
        of the stack).
        """
        if self.pre_gate is None:
            return None
        return self.pre_gate(hidden, top_k=top_k)

    def execute(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        """Expert-execution stage using an externally supplied routing decision."""
        return self.experts(hidden, routing)

    def forward(self, hidden: Tensor, routing: RoutingDecision) -> Tensor:
        return self.execute(hidden, routing)
