"""Peak GPU memory model (Equation 1 of the paper).

Under the Pre-gated MoE system the GPU permanently stores the dense non-MoE
parameters, while expert parameters are copied in on demand.  At any point
during MoE block *N*'s execution the GPU must hold the activated experts of
blocks *N* and *N+1* (the current block's experts are executing while the
next block's activated experts are being prefetched), so:

``peak = max_N ( NonMoE_M + sum_{L=N}^{N+1} ActExp_L )``

The same framework expresses the peak memory of the baselines:

* GPU-only: all parameters resident.
* MoE-OnDemand: non-MoE parameters + the activated experts of the current
  block only.
* MoE-Prefetch: non-MoE parameters + *all* experts of two consecutive blocks
  (the current block's full expert set plus the next block's being
  prefetched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..moe.configs import ModelConfig


@dataclass(frozen=True)
class ActivationReserve:
    """Working-set memory for activations and KV caches.

    The paper's peak-memory equation focuses on parameters; activations for
    single-batch decoding are comparatively tiny.  We still account for a
    small reserve so the GPU-only OOM behaviour of Switch-Large on an 80 GB
    A100 is reproduced faithfully.
    """

    batch_size: int = 1
    sequence_length: int = 256
    bytes_per_activation: int = 2

    def bytes_for(self, config: ModelConfig) -> int:
        # Hidden states + KV caches across layers for the configured batch.
        per_token = config.d_model * self.bytes_per_activation
        kv = 2 * config.num_decoder_layers * per_token
        hidden = config.num_layers * per_token
        return int(self.batch_size * self.sequence_length * (kv + hidden))


def activated_experts_per_block(config: ModelConfig, batch_tokens: int = 1,
                                top_k: Optional[int] = None) -> int:
    """Upper bound on distinct experts activated by one MoE block.

    With a batch of ``batch_tokens`` tokens and ``top_k`` routing, at most
    ``batch_tokens * top_k`` distinct experts (capped by the expert count)
    are activated.
    """
    k = top_k if top_k is not None else config.top_k
    return min(config.num_experts, max(1, batch_tokens * k))


def pregated_peak_memory(config: ModelConfig, batch_tokens: int = 1,
                         top_k: Optional[int] = None,
                         reserve: Optional[ActivationReserve] = None) -> int:
    """Peak GPU memory (bytes) of the Pre-gated MoE system — Equation 1."""
    reserve = reserve or ActivationReserve(batch_size=batch_tokens)
    active = activated_experts_per_block(config, batch_tokens, top_k)
    # Current block's activated experts + next block's activated experts.
    expert_bytes = 2 * active * config.expert_bytes()
    return config.non_moe_bytes() + expert_bytes + reserve.bytes_for(config)


def ondemand_peak_memory(config: ModelConfig, batch_tokens: int = 1,
                         top_k: Optional[int] = None,
                         reserve: Optional[ActivationReserve] = None) -> int:
    """Peak GPU memory of MoE-OnDemand: only the current block's activated experts."""
    reserve = reserve or ActivationReserve(batch_size=batch_tokens)
    active = activated_experts_per_block(config, batch_tokens, top_k)
    return config.non_moe_bytes() + active * config.expert_bytes() + reserve.bytes_for(config)


def prefetch_all_peak_memory(config: ModelConfig, batch_tokens: int = 1,
                             reserve: Optional[ActivationReserve] = None) -> int:
    """Peak GPU memory of MoE-Prefetch: two consecutive blocks' full expert sets."""
    reserve = reserve or ActivationReserve(batch_size=batch_tokens)
    expert_bytes = 2 * config.num_experts * config.expert_bytes()
    return config.non_moe_bytes() + expert_bytes + reserve.bytes_for(config)


def gpu_only_peak_memory(config: ModelConfig, batch_tokens: int = 1,
                         reserve: Optional[ActivationReserve] = None) -> int:
    """Peak GPU memory of the oracular GPU-only design: everything resident."""
    reserve = reserve or ActivationReserve(batch_size=batch_tokens)
    return config.total_bytes() + reserve.bytes_for(config)


_DESIGN_FUNCS = {
    "gpu_only": gpu_only_peak_memory,
    "pregated": pregated_peak_memory,
    "ondemand": ondemand_peak_memory,
    "prefetch_all": prefetch_all_peak_memory,
}


def peak_memory(design: str, config: ModelConfig, batch_tokens: int = 1,
                top_k: Optional[int] = None,
                reserve: Optional[ActivationReserve] = None) -> int:
    """Peak GPU memory of ``design`` (one of gpu_only / pregated / ondemand / prefetch_all)."""
    if design not in _DESIGN_FUNCS:
        raise ValueError(f"unknown design {design!r}; known: {sorted(_DESIGN_FUNCS)}")
    func = _DESIGN_FUNCS[design]
    if design in ("gpu_only", "prefetch_all"):
        return func(config, batch_tokens=batch_tokens, reserve=reserve)
    return func(config, batch_tokens=batch_tokens, top_k=top_k, reserve=reserve)


def peak_memory_comparison(config: ModelConfig, batch_tokens: int = 1,
                           top_k: Optional[int] = None) -> Dict[str, int]:
    """Peak GPU memory of all four designs for one configuration (Figure 12 row)."""
    return {design: peak_memory(design, config, batch_tokens=batch_tokens, top_k=top_k)
            for design in _DESIGN_FUNCS}
