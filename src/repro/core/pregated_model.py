"""Pre-gated Switch-Transformer model.

This is the paper's modified model architecture: structurally identical to
the conventional Switch-Transformer of :mod:`repro.moe.transformer`, except
that the gate functions are re-wired according to the pre-gate schedule
(Section IV-B, Figures 5 and 6):

* each MoE block's experts are selected by the pre-gate of the block
  ``activation_level`` positions earlier in the same stack;
* the first MoE block additionally hosts the "first gates" that select
  experts for the leading blocks;
* the last block(s) carry no pre-gate.

Pre-gate chains are maintained *within* the encoder stack and *within* each
decoder iteration; they never cross decoder iterations, matching Figure 6.

The class can be initialised from a conventional model's weights
(:meth:`PreGatedSwitchTransformer.load_from_conventional`) to reproduce the
paper's fine-tuning recipe: reuse the pre-trained conventional weights as-is
and incrementally train the pre-gate functions during fine-tuning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..tensor import (
    Dropout,
    Embedding,
    FeedForward,
    KVCache,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    Tensor,
    no_grad,
    use_backend,
)
from ..moe.configs import ModelConfig
from ..moe.gating import RoutingDecision
from ..moe.transformer import RoutingTraceEntry, Seq2SeqOutput, SwitchTransformer, _moe_layer_positions
from .pregate import PreGateSchedule, PreGatedMoEBlock


class _PreGatedStackState:
    """Pending routing decisions for one stack traversal.

    ``pending[i]`` holds the routing decision that will be consumed by MoE
    block *i* of the stack.  Entries for the leading blocks are filled by the
    first gates (evaluated at block 0); later entries are filled by pre-gates
    as the traversal progresses.
    """

    def __init__(self, num_blocks: int) -> None:
        self.pending: List[Optional[RoutingDecision]] = [None] * num_blocks

    def set(self, block_index: int, decision: RoutingDecision) -> None:
        if self.pending[block_index] is not None:
            raise RuntimeError(f"routing for MoE block {block_index} was already selected")
        self.pending[block_index] = decision

    def take(self, block_index: int) -> RoutingDecision:
        decision = self.pending[block_index]
        if decision is None:
            raise RuntimeError(
                f"no routing decision available for MoE block {block_index}; "
                "the pre-gate chain was not evaluated in order"
            )
        return decision


class PreGatedEncoderBlock(Module):
    """Encoder block whose MoE experts are selected via the pre-gate chain."""

    def __init__(self, config: ModelConfig, layer_index: int, use_moe: bool,
                 moe_block_index: int = 0, schedule: Optional[PreGateSchedule] = None,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.use_moe = use_moe
        self.moe_block_index = moe_block_index
        self.attention = MultiHeadAttention(config.d_model, config.num_heads, causal=False, rng=rng)
        self.attn_norm = LayerNorm(config.d_model)
        self.ffn_norm = LayerNorm(config.d_model)
        self.dropout = Dropout(dropout, rng=rng)
        if use_moe:
            self.moe = PreGatedMoEBlock(config.d_model, config.d_ff, config.num_experts,
                                        top_k=config.top_k, block_index=moe_block_index,
                                        schedule=schedule, rng=rng)
        else:
            self.ffn = FeedForward(config.d_model, config.d_ff, rng=rng)

    def forward(self, hidden: Tensor, state: Optional[_PreGatedStackState],
                padding_mask: Optional[np.ndarray] = None,
                top_k: Optional[int] = None) -> Tuple[Tensor, Optional[RoutingDecision]]:
        attn_out = self.attention(self.attn_norm(hidden), key_padding_mask=padding_mask)
        hidden = hidden + self.dropout(attn_out)

        normed = self.ffn_norm(hidden)
        routing = None
        if self.use_moe:
            batch, length, dim = normed.shape
            flat = normed.reshape(batch * length, dim)
            routing = _run_pregated_moe(self.moe, flat, state, top_k=top_k)
            moe_out = self.moe.execute(flat, routing)
            ffn_out = moe_out.reshape(batch, length, dim)
        else:
            ffn_out = self.ffn(normed)
        hidden = hidden + self.dropout(ffn_out)
        return hidden, routing


class PreGatedDecoderBlock(Module):
    """Decoder block whose MoE experts are selected via the pre-gate chain."""

    def __init__(self, config: ModelConfig, layer_index: int, use_moe: bool,
                 moe_block_index: int = 0, schedule: Optional[PreGateSchedule] = None,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.use_moe = use_moe
        self.moe_block_index = moe_block_index
        self.self_attention = MultiHeadAttention(config.d_model, config.num_heads, causal=True, rng=rng)
        self.cross_attention = MultiHeadAttention(config.d_model, config.num_heads, causal=False, rng=rng)
        self.self_norm = LayerNorm(config.d_model)
        self.cross_norm = LayerNorm(config.d_model)
        self.ffn_norm = LayerNorm(config.d_model)
        self.dropout = Dropout(dropout, rng=rng)
        if use_moe:
            self.moe = PreGatedMoEBlock(config.d_model, config.d_ff, config.num_experts,
                                        top_k=config.top_k, block_index=moe_block_index,
                                        schedule=schedule, rng=rng)
        else:
            self.ffn = FeedForward(config.d_model, config.d_ff, rng=rng)

    def forward(self, hidden: Tensor, encoder_hidden: Tensor, state: Optional[_PreGatedStackState],
                encoder_padding_mask: Optional[np.ndarray] = None,
                kv_cache: Optional[KVCache] = None,
                top_k: Optional[int] = None) -> Tuple[Tensor, Optional[RoutingDecision]]:
        self_out = self.self_attention(self.self_norm(hidden), kv_cache=kv_cache)
        hidden = hidden + self.dropout(self_out)

        cross_out = self.cross_attention(
            self.cross_norm(hidden), key=encoder_hidden, value=encoder_hidden,
            key_padding_mask=encoder_padding_mask,
        )
        hidden = hidden + self.dropout(cross_out)

        normed = self.ffn_norm(hidden)
        routing = None
        if self.use_moe:
            batch, length, dim = normed.shape
            flat = normed.reshape(batch * length, dim)
            routing = _run_pregated_moe(self.moe, flat, state, top_k=top_k)
            moe_out = self.moe.execute(flat, routing)
            ffn_out = moe_out.reshape(batch, length, dim)
        else:
            ffn_out = self.ffn(normed)
        hidden = hidden + self.dropout(ffn_out)
        return hidden, routing


def _run_pregated_moe(moe: PreGatedMoEBlock, flat: Tensor,
                      state: Optional[_PreGatedStackState],
                      top_k: Optional[int] = None) -> RoutingDecision:
    """Resolve the routing decision for ``moe`` and advance the pre-gate chain.

    At block 0 the first gates are evaluated (filling the leading pending
    entries).  At every block with a pre-gate the pre-gate selects experts
    for the block ``activation_level`` ahead.  The block's own routing is
    then *consumed* from the pending state — it was produced earlier, which
    is exactly what gives the serving system its prefetch window.
    """
    if state is None:
        raise RuntimeError("pre-gated MoE blocks require a stack state")
    idx = moe.block_index
    if idx == 0:
        for target in range(len(moe.first_gates)):
            state.set(target, moe.select_first(flat, target, top_k=top_k))
    future = moe.select_next(flat, top_k=top_k)
    if future is not None:
        state.set(idx + moe.schedule.activation_level, future)
    return state.take(idx)


class PreGatedSwitchTransformer(Module):
    """Switch-Transformer with the pre-gated MoE architecture.

    Parameters
    ----------
    config:
        Model configuration (must be an MoE configuration).
    activation_level:
        How many MoE blocks ahead each pre-gate selects for (``N`` in the
        paper's Figure 13; default 1).
    """

    def __init__(self, config: ModelConfig, activation_level: int = 1,
                 dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        if not config.is_moe:
            raise ValueError("PreGatedSwitchTransformer requires an MoE configuration")
        if activation_level < 1:
            raise ValueError("activation_level must be >= 1")
        self.config = config
        self.activation_level = activation_level
        rng = np.random.default_rng(seed)

        self.encoder_moe_positions = _moe_layer_positions(
            config.num_encoder_layers, config.moe_layer_frequency)
        self.decoder_moe_positions = _moe_layer_positions(
            config.num_decoder_layers, config.moe_layer_frequency)

        self.encoder_schedule = PreGateSchedule(
            num_blocks=max(len(self.encoder_moe_positions), 1),
            activation_level=activation_level)
        self.decoder_schedule = PreGateSchedule(
            num_blocks=max(len(self.decoder_moe_positions), 1),
            activation_level=activation_level)

        self.embedding = Embedding(config.vocab_size, config.d_model, rng=rng)

        encoder_blocks = []
        moe_idx = 0
        for i in range(config.num_encoder_layers):
            use_moe = i in self.encoder_moe_positions
            encoder_blocks.append(PreGatedEncoderBlock(
                config, i, use_moe, moe_block_index=moe_idx,
                schedule=self.encoder_schedule, dropout=dropout, rng=rng))
            moe_idx += int(use_moe)
        self.encoder_blocks = ModuleList(encoder_blocks)
        self.encoder_final_norm = LayerNorm(config.d_model)

        decoder_blocks = []
        moe_idx = 0
        for i in range(config.num_decoder_layers):
            use_moe = i in self.decoder_moe_positions
            decoder_blocks.append(PreGatedDecoderBlock(
                config, i, use_moe, moe_block_index=moe_idx,
                schedule=self.decoder_schedule, dropout=dropout, rng=rng))
            moe_idx += int(use_moe)
        self.decoder_blocks = ModuleList(decoder_blocks)
        self.decoder_final_norm = LayerNorm(config.d_model)

        self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------
    # Encoder / decoder passes
    # ------------------------------------------------------------------
    def encode(self, input_ids: np.ndarray, padding_mask: Optional[np.ndarray] = None,
               trace: Optional[List[RoutingTraceEntry]] = None,
               top_k: Optional[int] = None) -> Tensor:
        hidden = self.embedding(input_ids)
        state = _PreGatedStackState(len(self.encoder_moe_positions))
        for block in self.encoder_blocks:
            hidden, routing = block(hidden, state, padding_mask=padding_mask, top_k=top_k)
            if routing is not None and trace is not None:
                trace.append(RoutingTraceEntry("encoder", block.layer_index,
                                               block.moe_block_index, routing))
        return self.encoder_final_norm(hidden)

    def decode(self, decoder_ids: np.ndarray, encoder_hidden: Tensor,
               encoder_padding_mask: Optional[np.ndarray] = None,
               kv_caches: Optional[List[KVCache]] = None,
               trace: Optional[List[RoutingTraceEntry]] = None,
               top_k: Optional[int] = None) -> Tensor:
        hidden = self.embedding(decoder_ids)
        state = _PreGatedStackState(len(self.decoder_moe_positions))
        for i, block in enumerate(self.decoder_blocks):
            cache = kv_caches[i] if kv_caches is not None else None
            hidden, routing = block(hidden, encoder_hidden, state,
                                    encoder_padding_mask=encoder_padding_mask,
                                    kv_cache=cache, top_k=top_k)
            if routing is not None and trace is not None:
                trace.append(RoutingTraceEntry("decoder", block.layer_index,
                                               block.moe_block_index, routing))
        hidden = self.decoder_final_norm(hidden)
        return self.lm_head(hidden)

    # ------------------------------------------------------------------
    def forward(self, input_ids: np.ndarray, decoder_ids: np.ndarray,
                input_padding_mask: Optional[np.ndarray] = None,
                top_k: Optional[int] = None) -> Seq2SeqOutput:
        trace: List[RoutingTraceEntry] = []
        encoder_hidden = self.encode(input_ids, padding_mask=input_padding_mask,
                                     trace=trace, top_k=top_k)
        logits = self.decode(decoder_ids, encoder_hidden,
                             encoder_padding_mask=input_padding_mask,
                             trace=trace, top_k=top_k)
        aux = Tensor(0.0)
        for entry in trace:
            aux = aux + entry.decision.aux_loss
        if trace:
            aux = aux * (1.0 / len(trace))
        return Seq2SeqOutput(logits=logits, aux_loss=aux, routing_trace=trace,
                             encoder_hidden=encoder_hidden)

    # ------------------------------------------------------------------
    def greedy_decode(self, input_ids: np.ndarray, bos_id: int, eos_id: int,
                      max_new_tokens: int = 16,
                      input_padding_mask: Optional[np.ndarray] = None,
                      collect_trace: bool = False,
                      top_k: Optional[int] = None
                      ) -> Tuple[np.ndarray, List[List[RoutingTraceEntry]]]:
        """Greedy incremental decoding; see :meth:`SwitchTransformer.greedy_decode`."""
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch = input_ids.shape[0]
        traces: List[List[RoutingTraceEntry]] = []
        # Same eager stand-down as SwitchTransformer.greedy_decode: the
        # token-by-token loop demands values each step, so lazy recording
        # is pure overhead here.
        with use_backend("eager"), no_grad():
            encoder_trace: List[RoutingTraceEntry] = [] if collect_trace else None
            encoder_hidden = self.encode(input_ids, padding_mask=input_padding_mask,
                                         trace=encoder_trace, top_k=top_k)
            if collect_trace and encoder_trace:
                traces.append(encoder_trace)

            kv_caches = [KVCache() for _ in range(self.config.num_decoder_layers)]
            # Preallocated output buffer: the whole batch decodes in one
            # tensor step per token, with no per-token reallocation.
            generated = np.full((batch, max_new_tokens + 1), eos_id, dtype=np.int64)
            generated[:, 0] = bos_id
            length = 1
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_new_tokens):
                step_trace: List[RoutingTraceEntry] = [] if collect_trace else None
                last_tokens = generated[:, length - 1:length]
                logits = self.decode(last_tokens, encoder_hidden,
                                     encoder_padding_mask=input_padding_mask,
                                     kv_caches=kv_caches, trace=step_trace, top_k=top_k)
                next_ids = np.argmax(logits.numpy()[:, -1, :], axis=-1)
                next_ids = np.where(finished, eos_id, next_ids)
                generated[:, length] = next_ids
                length += 1
                if collect_trace:
                    traces.append(step_trace)
                finished |= next_ids == eos_id
                if finished.all():
                    break
        return generated[:, :length], traces

    # ------------------------------------------------------------------
    # Weight reuse from a conventional model (Section IV-B)
    # ------------------------------------------------------------------
    def load_from_conventional(self, conventional: SwitchTransformer) -> None:
        """Initialise from a pre-trained conventional Switch-Transformer.

        All shared parameters (embeddings, attention, norms, experts, LM
        head) are copied as-is.  Gate functions are re-mapped: the gate that
        used to select experts for MoE block *i* initialises whichever gate
        now selects experts for block *i* under the pre-gate schedule (a
        first gate or an earlier block's pre-gate).  The pre-gates are then
        fine-tuned by the trainer, which matches the paper's recipe of
        incrementally training pre-gates during fine-tuning.
        """
        if conventional.config.name != self.config.name:
            raise ValueError(
                "conventional and pre-gated models must share a configuration: "
                f"{conventional.config.name!r} vs {self.config.name!r}"
            )
        source = conventional.state_dict()
        target_names = dict(self.named_parameters())
        remapped: Dict[str, np.ndarray] = {}
        for name, value in source.items():
            new_name = self._remap_conventional_name(name)
            if new_name is not None and new_name in target_names:
                remapped[new_name] = value
        self.load_state_dict(remapped, strict=False)

    def _remap_conventional_name(self, name: str) -> Optional[str]:
        """Map a conventional parameter name onto this model's namespace."""
        # Conventional MoE blocks live under "...moe.gate.*" and
        # "...moe.experts.*"; pre-gated blocks keep "...moe.experts.*" but
        # their gates are re-wired.
        if ".moe.gate." not in name:
            return name  # experts, attention, norms, embeddings are verbatim

        # name looks like "{stack}_blocks.{layer}.moe.gate.classifier.weight"
        parts = name.split(".")
        stack_attr, layer_str = parts[0], parts[1]
        layer_index = int(layer_str)
        suffix = ".".join(parts[3:])  # "gate.classifier.weight"
        gate_suffix = suffix[len("gate."):]

        if stack_attr == "encoder_blocks":
            positions = self.encoder_moe_positions
            schedule = self.encoder_schedule
        elif stack_attr == "decoder_blocks":
            positions = self.decoder_moe_positions
            schedule = self.decoder_schedule
        else:
            return name
        if layer_index not in positions:
            return None
        moe_index = positions.index(layer_index)

        if schedule.selector_of(moe_index) == "first_gate":
            first_layer = positions[0]
            return (f"{stack_attr}.{first_layer}.moe.first_gates.{moe_index}.{gate_suffix}")
        selecting = schedule.selecting_block(moe_index)
        selecting_layer = positions[selecting]
        return f"{stack_attr}.{selecting_layer}.moe.pre_gate.{gate_suffix}"
